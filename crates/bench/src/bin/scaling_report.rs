//! Scaling diagnosis: profile the campaign thread sweep with per-worker
//! phase metrics and explain *why* it scales the way it does.
//!
//! ```text
//! scaling_report [--frames N] [--inj N] [--threads N[,N...]] [--every-k K]
//!                [--seed S] [--repeats R] [--out-dir DIR] [--bench-out FILE]
//!                [--trace FILE] [--overhead-gate PCT] [--expect-scaling X]
//!                [--min-coverage F] [--smoke]
//! ```
//!
//! The earlier `campaign_bench` thread sweep produced a *flat* curve —
//! ~the same runs/sec at 1, 2 and 4 threads — with nothing to say about
//! the cause. This binary reruns that sweep with the `vs-telemetry`
//! metrics layer armed, so every worker's wall time decomposes into the
//! named campaign phases (`draw`, `setup`, `exec`, `teardown`,
//! `classify`, `record`, `lock_wait`), and reports:
//!
//! - **Attribution coverage** — the share of per-worker wall time the
//!   phase histograms account for, gated at `--min-coverage` (default
//!   0.95) for every sweep cell. An unattributed gap means a phase is
//!   missing from the vocabulary.
//! - **Before/after collector comparison** — every cell runs twice:
//!   with the legacy shared-`Mutex` results vector
//!   ([`Collection::SharedMutex`], the suspected serializer) and with
//!   the per-worker disjoint result slots that replaced it
//!   ([`Collection::WorkerSlots`]). The measured `lock_wait` histogram
//!   settles whether the mutex was ever hot: workers take it once per
//!   stripe, so its share is expected (and confirmed) to be tiny.
//! - **Overhead A/B** — interleaved metrics-off/metrics-on repeats of
//!   the same campaign, gated with `--overhead-gate` (percent) so the
//!   observability layer itself provably does not perturb throughput.
//! - **USL fit** — a grid-search least-squares fit of the Universal
//!   Scalability Law `s(n) = n / (1 + σ(n−1) + κ·n(n−1))` over the
//!   measured speedups, reporting the serial fraction σ and coherency
//!   term κ alongside the direct Amdahl inversion at the widest point.
//! - **Diagnosis** — the named serializing component. On a host where
//!   `host_cores < max(threads)` the honest answer is CPU
//!   oversubscription: extra threads time-slice one core, no software
//!   fix changes the curve, and the `--expect-scaling` gate is skipped
//!   (with a note) rather than fabricating a speedup.
//!
//! Outcome identity is enforced throughout: every campaign in the sweep
//! (both collectors, all thread counts, metrics on or off) must classify
//! every injection exactly like the metrics-off reference run.
//!
//! Artifacts: `scaling_report.md` + `scaling_report.json` under
//! `--out-dir` (default `out/scaling/`), and the `BENCH_5.json` summary
//! at `--bench-out`. `--smoke` shrinks the workload so the whole report
//! finishes in seconds (used by `scripts/verify.sh`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, phase, CampaignConfig, CheckpointPolicy, Collection, Injection};
use vs_fault::spec::RegClass;
use vs_telemetry::metrics::{self, MetricsRegistry, WorkerMetrics};
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};

const USAGE: &str = "usage: scaling_report [--frames N] [--inj N] [--threads N[,N...]] [--every-k K] [--seed S] [--repeats R] [--out-dir DIR] [--bench-out FILE] [--trace FILE] [--overhead-gate PCT] [--expect-scaling X] [--min-coverage F] [--smoke]";

struct Opts {
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    /// Thread counts to sweep; the first is the speedup baseline.
    threads: Vec<usize>,
    every_k: usize,
    seed: u64,
    /// Timed repeats per sweep cell (median/min/mean reported).
    repeats: usize,
    out_dir: PathBuf,
    bench_out: PathBuf,
    trace: Option<PathBuf>,
    /// Metrics-on overhead bound in percent over metrics-off (0 = off).
    overhead_gate_pct: f64,
    /// Required speedup at max threads vs baseline (0 = off). Skipped
    /// with a note when the host cannot physically provide it.
    expect_scaling: f64,
    /// Minimum attribution coverage per sweep cell.
    min_coverage: f64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            frames: 16,
            width: 128,
            height: 96,
            injections: 120,
            threads: vec![1, 2, 4],
            every_k: 1,
            seed: 0xBE6C,
            repeats: 3,
            out_dir: "out/scaling".into(),
            bench_out: "BENCH_5.json".into(),
            trace: None,
            overhead_gate_pct: 0.0,
            expect_scaling: 0.0,
            min_coverage: 0.95,
        }
    }
}

/// Parse a `--threads` comma list: non-empty, every count positive.
fn parse_threads(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|s| s.trim().parse::<usize>().map_err(|_| "bad --threads"))
        .collect::<Result<_, _>>()?;
    if list.is_empty() || list.contains(&0) {
        return Err("--threads needs positive counts".into());
    }
    Ok(list)
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--frames" => o.frames = val("--frames")?.parse().map_err(|_| "bad --frames")?,
            "--inj" => o.injections = val("--inj")?.parse().map_err(|_| "bad --inj")?,
            "--threads" => o.threads = parse_threads(&val("--threads")?)?,
            "--every-k" => o.every_k = val("--every-k")?.parse().map_err(|_| "bad --every-k")?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--repeats" => o.repeats = val("--repeats")?.parse().map_err(|_| "bad --repeats")?,
            "--out-dir" => o.out_dir = val("--out-dir")?.into(),
            "--bench-out" => o.bench_out = val("--bench-out")?.into(),
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--overhead-gate" => {
                o.overhead_gate_pct = val("--overhead-gate")?
                    .parse()
                    .map_err(|_| "bad --overhead-gate")?
            }
            "--expect-scaling" => {
                o.expect_scaling = val("--expect-scaling")?
                    .parse()
                    .map_err(|_| "bad --expect-scaling")?
            }
            "--min-coverage" => {
                o.min_coverage = val("--min-coverage")?
                    .parse()
                    .map_err(|_| "bad --min-coverage")?
            }
            "--smoke" => {
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 24;
                o.threads = vec![1, 2];
                o.repeats = 2;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if o.every_k == 0 {
        return Err("--every-k must be positive".into());
    }
    if o.repeats == 0 {
        return Err("--repeats must be positive".into());
    }
    if !(0.0..=1.0).contains(&o.min_coverage) {
        return Err("--min-coverage must be in [0, 1]".into());
    }
    Ok(o)
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

/// Median / min / mean of a set of wall times.
#[derive(Clone, Copy)]
struct Spread {
    median: f64,
    min: f64,
    mean: f64,
}

fn spread(times: &[f64]) -> Spread {
    let mut s = times.to_vec();
    s.sort_by(f64::total_cmp);
    Spread {
        median: s[s.len() / 2],
        min: s[0],
        mean: s.iter().sum::<f64>() / s.len() as f64,
    }
}

/// Outcome identity: same faults drawn, same firing, same
/// classification, in the same campaign order.
fn same_records<O>(a: &[Injection<O>], b: &[Injection<O>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.index == y.index && x.spec == y.spec && x.outcome == y.outcome && x.fired == y.fired
        })
}

/// One sweep cell: a (thread count, collector) pair measured over
/// `repeats` campaigns, with the *last* repeat's merged phase metrics
/// (the registry is reset between repeats so counts stay per-campaign).
struct Cell {
    threads: usize,
    collector: Collection,
    wall: Spread,
    identical: bool,
    merged: WorkerMetrics,
    per_worker: Vec<(usize, WorkerMetrics)>,
}

impl Cell {
    /// Nanoseconds attributed to the named top-level phases.
    fn attributed_ns(m: &WorkerMetrics) -> u64 {
        phase::TOP
            .iter()
            .filter_map(|p| m.histogram(p))
            .map(|h| h.sum())
            .sum()
    }

    fn wall_ns(m: &WorkerMetrics) -> u64 {
        m.histogram(phase::WORKER_WALL).map_or(0, |h| h.sum())
    }

    /// Share of summed worker wall time covered by the phase vocabulary.
    fn coverage(&self) -> f64 {
        let wall = Self::wall_ns(&self.merged);
        if wall == 0 {
            return 0.0;
        }
        Self::attributed_ns(&self.merged) as f64 / wall as f64
    }

    /// Worst single worker's coverage (driver row excluded — it has no
    /// `worker_wall` sample).
    fn min_worker_coverage(&self) -> f64 {
        self.per_worker
            .iter()
            .filter(|(id, _)| *id < self.threads)
            .map(|(_, m)| {
                let wall = Self::wall_ns(m);
                if wall == 0 {
                    0.0
                } else {
                    Self::attributed_ns(m) as f64 / wall as f64
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Share of wall time spent in one phase.
    fn phase_share(&self, name: &str) -> f64 {
        let wall = Self::wall_ns(&self.merged);
        if wall == 0 {
            return 0.0;
        }
        self.merged.histogram(name).map_or(0, |h| h.sum()) as f64 / wall as f64
    }

    /// The top-level phase with the largest summed time.
    fn dominant_phase(&self) -> &'static str {
        phase::TOP
            .iter()
            .copied()
            .max_by_key(|p| self.merged.histogram(p).map_or(0, |h| h.sum()))
            .unwrap_or(phase::EXEC)
    }
}

/// Universal Scalability Law fit over measured (n, speedup) points via
/// grid search: `s(n) = n / (1 + sigma*(n-1) + kappa*n*(n-1))`.
struct UslFit {
    sigma: f64,
    kappa: f64,
    rms_error: f64,
}

fn usl_model(n: f64, sigma: f64, kappa: f64) -> f64 {
    n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0))
}

fn fit_usl(points: &[(f64, f64)]) -> UslFit {
    let mut best = UslFit {
        sigma: 0.0,
        kappa: 0.0,
        rms_error: f64::INFINITY,
    };
    for si in 0..=1000 {
        let sigma = si as f64 * 1e-3;
        for ki in 0..=100 {
            let kappa = ki as f64 * 5e-4;
            let sse: f64 = points
                .iter()
                .map(|&(n, s)| {
                    let e = usl_model(n, sigma, kappa) - s;
                    e * e
                })
                .sum();
            let rms = (sse / points.len() as f64).sqrt();
            if rms < best.rms_error {
                best = UslFit {
                    sigma,
                    kappa,
                    rms_error: rms,
                };
            }
        }
    }
    best
}

/// Human-readable nanoseconds for report tables.
fn fmt_ns(ns: u64) -> String {
    vs_bench::timing::fmt_secs(ns as f64 / 1e9)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    vs_telemetry::set_trace_seed(o.seed);
    let _telemetry = vs_telemetry::install(sink);
    let host_cores = vs_bench::host_cores();
    vs_telemetry::emit(
        "bench_config",
        &[
            ("bench", Value::Str("scaling_report")),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads[0] as u64)),
            ("thread_sweep", Value::U64(o.threads.len() as u64)),
            ("every_k", Value::U64(o.every_k as u64)),
            ("seed", Value::U64(o.seed)),
            ("repeats", Value::U64(o.repeats as u64)),
            ("host_cores", Value::U64(host_cores as u64)),
        ],
    );

    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());

    let t0 = Instant::now();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    vs_telemetry::emit(
        "golden_profiled",
        &[
            ("capturing_secs", Value::F64(t0.elapsed().as_secs_f64())),
            ("checkpoints", Value::U64(ck.checkpoints.len() as u64)),
        ],
    );

    let cfg_for = |n: usize, coll: Collection| {
        CampaignConfig::new(RegClass::Gpr, o.injections)
            .seed(o.seed)
            .threads(n)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k))
            .collection(coll)
    };

    // Metrics-off reference: every other campaign in this report must
    // reproduce these records exactly.
    let base_threads = o.threads[0];
    let reference = campaign::run_campaign_checkpointed(
        &w,
        &ck,
        &cfg_for(base_threads, Collection::WorkerSlots),
    );

    // Overhead A/B: interleaved off/on repeats at the baseline thread
    // count, so machine-wide drift lands on both sides equally.
    let overhead_reps = o.repeats.max(3);
    let overhead_reg = Arc::new(MetricsRegistry::new());
    let mut off_times = Vec::with_capacity(overhead_reps);
    let mut on_times = Vec::with_capacity(overhead_reps);
    let mut identical = true;
    for _ in 0..overhead_reps {
        let t = Instant::now();
        let recs = campaign::run_campaign_checkpointed(
            &w,
            &ck,
            &cfg_for(base_threads, Collection::WorkerSlots),
        );
        off_times.push(t.elapsed().as_secs_f64());
        identical &= same_records(&recs, &reference);

        let guard = metrics::install(overhead_reg.clone());
        let t = Instant::now();
        let recs = campaign::run_campaign_checkpointed(
            &w,
            &ck,
            &cfg_for(base_threads, Collection::WorkerSlots),
        );
        on_times.push(t.elapsed().as_secs_f64());
        drop(guard);
        identical &= same_records(&recs, &reference);
    }
    let off = spread(&off_times);
    let on = spread(&on_times);
    let overhead_pct = (on.median / off.median - 1.0) * 100.0;
    // Absolute slack floors the gate: at smoke scale a campaign lasts
    // tens of ms and a single scheduler hiccup exceeds any percentage.
    let overhead_ok = o.overhead_gate_pct <= 0.0
        || on.median <= off.median * (1.0 + o.overhead_gate_pct / 100.0) + 0.005;
    vs_telemetry::emit(
        "metrics_overhead",
        &[
            ("off_secs", Value::F64(off.median)),
            ("on_secs", Value::F64(on.median)),
            ("off_min_secs", Value::F64(off.min)),
            ("on_min_secs", Value::F64(on.min)),
            ("overhead_pct", Value::F64(overhead_pct)),
            ("repeats", Value::U64(overhead_reps as u64)),
        ],
    );

    // The sweep proper: thread counts x collectors, metrics armed. The
    // registry is reset before each repeat so the retained (last)
    // repeat's counts are per-campaign, not per-cell-accumulated.
    let mut cells: Vec<Cell> = Vec::new();
    for &n in &o.threads {
        for coll in [Collection::SharedMutex, Collection::WorkerSlots] {
            let reg = Arc::new(MetricsRegistry::new());
            let mut times = Vec::with_capacity(o.repeats);
            let mut cell_identical = true;
            for _ in 0..o.repeats {
                reg.reset();
                let guard = metrics::install(reg.clone());
                let t = Instant::now();
                let recs = campaign::run_campaign_checkpointed(&w, &ck, &cfg_for(n, coll));
                times.push(t.elapsed().as_secs_f64());
                drop(guard);
                cell_identical &= same_records(&recs, &reference);
            }
            identical &= cell_identical;
            let merged = reg.merged();
            metrics::emit_snapshot(
                &merged,
                n,
                &[
                    ("threads", Value::U64(n as u64)),
                    ("collector", Value::Str(coll.name())),
                ],
            );
            let cell = Cell {
                threads: n,
                collector: coll,
                wall: spread(&times),
                identical: cell_identical,
                merged,
                per_worker: reg.per_worker(),
            };
            vs_telemetry::emit(
                "metrics_coverage",
                &[
                    ("threads", Value::U64(n as u64)),
                    ("collector", Value::Str(coll.name())),
                    (
                        "attributed_ns",
                        Value::U64(Cell::attributed_ns(&cell.merged)),
                    ),
                    ("wall_ns", Value::U64(Cell::wall_ns(&cell.merged))),
                    ("coverage", Value::F64(cell.coverage())),
                    (
                        "min_worker_coverage",
                        Value::F64(cell.min_worker_coverage()),
                    ),
                ],
            );
            vs_telemetry::emit(
                "scaling_run",
                &[
                    ("threads", Value::U64(n as u64)),
                    ("collector", Value::Str(coll.name())),
                    ("median_secs", Value::F64(cell.wall.median)),
                    ("min_secs", Value::F64(cell.wall.min)),
                    ("mean_secs", Value::F64(cell.wall.mean)),
                    (
                        "runs_per_sec",
                        Value::F64(o.injections as f64 / cell.wall.median),
                    ),
                    ("identical", Value::Bool(cell_identical)),
                    ("oversubscribed", Value::Bool(n > host_cores)),
                ],
            );
            cells.push(cell);
        }
    }

    let cell_at = |n: usize, coll: Collection| {
        cells
            .iter()
            .find(|c| c.threads == n && c.collector == coll)
            .expect("sweep cell missing")
    };
    let max_n = *o.threads.iter().max().expect("threads non-empty");
    let base_slots = cell_at(base_threads, Collection::WorkerSlots);
    let base_mutex = cell_at(base_threads, Collection::SharedMutex);
    let max_slots = cell_at(max_n, Collection::WorkerSlots);
    let max_mutex = cell_at(max_n, Collection::SharedMutex);

    // Speedups at the widest point, per collector ("before" = shared
    // mutex, "after" = per-worker slots).
    let speedup_before = base_mutex.wall.median / max_mutex.wall.median;
    let speedup_after = base_slots.wall.median / max_slots.wall.median;
    let lock_share = max_mutex.phase_share(phase::LOCK_WAIT);
    let dominant = max_slots.dominant_phase();
    let min_coverage_seen = cells
        .iter()
        .map(Cell::coverage)
        .fold(f64::INFINITY, f64::min);

    // USL fit over the after-fix (worker-slots) speedup curve, in
    // thread units relative to the baseline count.
    let usl_points: Vec<(f64, f64)> = o
        .threads
        .iter()
        .map(|&n| {
            let c = cell_at(n, Collection::WorkerSlots);
            (
                n as f64 / base_threads as f64,
                base_slots.wall.median / c.wall.median,
            )
        })
        .collect();
    let usl = fit_usl(&usl_points);
    // Direct Amdahl inversion at the widest point: s = 1/(f + (1-f)/n).
    let amdahl_serial = if max_n > base_threads && speedup_after > 0.0 {
        let x = max_n as f64 / base_threads as f64;
        (((x / speedup_after) - 1.0) / (x - 1.0)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    vs_telemetry::emit(
        "scaling_fit",
        &[
            ("sigma", Value::F64(usl.sigma)),
            ("kappa", Value::F64(usl.kappa)),
            ("rms_error", Value::F64(usl.rms_error)),
            ("amdahl_serial_fraction", Value::F64(amdahl_serial)),
            ("speedup_before", Value::F64(speedup_before)),
            ("speedup_after", Value::F64(speedup_after)),
        ],
    );

    // Diagnosis: name the serializing component the profile points at.
    let oversubscribed = host_cores < max_n;
    let serializing = if oversubscribed {
        format!("cpu_oversubscription(host_cores={host_cores})")
    } else if lock_share > 0.05 {
        format!("results_mutex(lock_wait={:.1}%)", lock_share * 100.0)
    } else {
        format!("phase:{dominant}")
    };
    let diagnosis = if oversubscribed {
        format!(
            "The sweep is flat because the host exposes {host_cores} core(s) for up to {max_n} \
             worker threads: extra threads time-slice the same core, so wall time cannot drop. \
             The phase profile confirms no software serializer: lock_wait is {:.2}% of worker \
             wall time under the legacy shared-mutex collector (workers take the lock once per \
             stripe, not per run), and {:.1}% of worker time is `{dominant}` — compute. On a \
             multi-core host the per-worker-slot collector is expected to scale until `{dominant}` \
             saturates physical cores.",
            lock_share * 100.0,
            max_slots.phase_share(dominant) * 100.0,
        )
    } else {
        format!(
            "At {max_n} threads on {host_cores} cores the dominant worker phase is `{dominant}` \
             ({:.1}% of wall time); lock_wait under the legacy shared-mutex collector is {:.2}%. \
             Fitted USL serial fraction sigma = {:.3}.",
            max_slots.phase_share(dominant) * 100.0,
            lock_share * 100.0,
            usl.sigma,
        )
    };

    // ---- Artifacts -------------------------------------------------
    if let Err(e) = std::fs::create_dir_all(&o.out_dir) {
        eprintln!("error: cannot create {}: {e}", o.out_dir.display());
        return ExitCode::FAILURE;
    }

    let phase_order: Vec<&str> = phase::TOP
        .iter()
        .copied()
        .chain([phase::RESTORE, phase::COLLECT, phase::WORKER_WALL])
        .collect();
    let phase_table_md = |cell: &Cell| {
        let wall = Cell::wall_ns(&cell.merged).max(1);
        let mut rows = String::from(
            "| phase | count | total | share | p50 | p90 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for name in &phase_order {
            let Some(h) = cell.merged.histogram(name) else {
                continue;
            };
            if h.count() == 0 {
                continue;
            }
            rows.push_str(&format!(
                "| {name} | {} | {} | {:.1}% | {} | {} | {} | {} |\n",
                h.count(),
                fmt_ns(h.sum()),
                h.sum() as f64 / wall as f64 * 100.0,
                fmt_ns(h.p50()),
                fmt_ns(h.p90()),
                fmt_ns(h.p99()),
                fmt_ns(h.max()),
            ));
        }
        rows
    };

    let sweep_table_md = {
        let mut rows = String::from(
            "| threads | collector | median | min | mean | runs/s | speedup | identical | oversubscribed |\n|---:|---|---:|---:|---:|---:|---:|---|---|\n",
        );
        for c in &cells {
            let base = cell_at(base_threads, c.collector);
            rows.push_str(&format!(
                "| {} | {} | {:.3}s | {:.3}s | {:.3}s | {:.1} | {:.2}x | {} | {} |\n",
                c.threads,
                c.collector.name(),
                c.wall.median,
                c.wall.min,
                c.wall.mean,
                o.injections as f64 / c.wall.median,
                base.wall.median / c.wall.median,
                c.identical,
                c.threads > host_cores,
            ));
        }
        rows
    };

    let scaling_note = if oversubscribed {
        format!(
            "\n> **Note:** host_cores = {host_cores} < {max_n} threads — every multi-thread cell \
             is oversubscribed, so the speedup column reflects time-slicing, not parallel \
             capacity. The `--expect-scaling` gate is skipped on this host.\n"
        )
    } else {
        String::new()
    };
    let md = format!(
        "# Scaling diagnosis: campaign thread sweep\n\n\
         Workload: {}x{} input2, {} frames, {} GPR injections, checkpoint every {} frame(s), \
         seed 0x{:X}. Host cores: {host_cores}. Repeats per cell: {}.\n\n\
         ## Metrics overhead (A/B, interleaved, {} repeats)\n\n\
         | side | median | min | mean |\n|---|---:|---:|---:|\n\
         | metrics off | {:.3}s | {:.3}s | {:.3}s |\n\
         | metrics on | {:.3}s | {:.3}s | {:.3}s |\n\n\
         Overhead: {overhead_pct:+.2}% on the median.\n\n\
         ## Thread sweep (speedup vs {base_threads}-thread cell of the same collector)\n\n\
         {sweep_table_md}{scaling_note}\n\
         ## Phase attribution — worker_slots @ {max_n} threads\n\n\
         {}\n\
         Attribution coverage: {:.1}% of summed worker wall time (worst worker {:.1}%; \
         worst sweep cell {:.1}%). Runs resumed from a checkpoint: {}, from scratch: {}.\n\n\
         ## Phase attribution — shared_mutex @ {max_n} threads (before the fix)\n\n\
         {}\n\
         `lock_wait` is {:.2}% of worker wall time: each worker takes the results mutex once \
         per stripe, so the legacy collector was never a hot-path serializer.\n\n\
         ## USL fit (worker_slots speedups)\n\n\
         sigma (contention) = {:.3}, kappa (coherency) = {:.4}, rms error = {:.4}. \
         Amdahl inversion at {max_n} threads: serial fraction = {:.3}.\n\n\
         ## Diagnosis\n\n\
         Serializing component: **{serializing}**\n\n{diagnosis}\n",
        o.width,
        o.height,
        o.frames,
        o.injections,
        o.every_k,
        o.seed,
        o.repeats,
        overhead_reps,
        off.median,
        off.min,
        off.mean,
        on.median,
        on.min,
        on.mean,
        phase_table_md(max_slots),
        max_slots.coverage() * 100.0,
        max_slots.min_worker_coverage() * 100.0,
        min_coverage_seen * 100.0,
        max_slots.merged.counter(phase::RUNS_RESUMED),
        max_slots.merged.counter(phase::RUNS_FROM_SCRATCH),
        phase_table_md(max_mutex),
        lock_share * 100.0,
        usl.sigma,
        usl.kappa,
        usl.rms_error,
        amdahl_serial,
    );

    let phase_rows_json = |cell: &Cell| {
        let wall = Cell::wall_ns(&cell.merged).max(1);
        phase_order
            .iter()
            .filter_map(|name| {
                let h = cell.merged.histogram(name)?;
                if h.count() == 0 {
                    return None;
                }
                Some(format!(
                    "      {{\"phase\": \"{name}\", \"count\": {}, \"sum_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"share_of_wall\": {}}}",
                    h.count(),
                    h.sum(),
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max(),
                    json_f(h.sum() as f64 / wall as f64),
                ))
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let sweep_rows_json = cells
        .iter()
        .map(|c| {
            let base = cell_at(base_threads, c.collector);
            format!(
                "    {{\"threads\": {}, \"collector\": \"{}\", \"median_secs\": {}, \"min_secs\": {}, \"mean_secs\": {}, \"runs_per_sec\": {}, \"speedup_vs_base\": {}, \"coverage\": {}, \"identical\": {}, \"oversubscribed\": {}}}",
                c.threads,
                c.collector.name(),
                json_f(c.wall.median),
                json_f(c.wall.min),
                json_f(c.wall.mean),
                json_f(o.injections as f64 / c.wall.median),
                json_f(base.wall.median / c.wall.median),
                json_f(c.coverage()),
                c.identical,
                c.threads > host_cores,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"scaling_report\",\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections\": {},\n  \"checkpoint_every_k\": {},\n  \"seed\": {},\n  \"threads\": {:?},\n  \"repeats\": {},\n  \"host_cores\": {host_cores},\n  \"overhead\": {{\"off_secs\": {}, \"on_secs\": {}, \"off_min_secs\": {}, \"on_min_secs\": {}, \"overhead_pct\": {}, \"repeats\": {overhead_reps}, \"within_gate\": {}}},\n  \"sweep\": [\n{sweep_rows_json}\n  ],\n  \"phases_worker_slots_max_threads\": [\n{}\n  ],\n  \"phases_shared_mutex_max_threads\": [\n{}\n  ],\n  \"counters\": {{\"runs_resumed\": {}, \"runs_from_scratch\": {}}},\n  \"lock_wait_share_of_wall\": {},\n  \"attribution_coverage\": {},\n  \"attribution_coverage_min_worker\": {},\n  \"attribution_coverage_min_cell\": {},\n  \"usl\": {{\"sigma\": {}, \"kappa\": {}, \"rms_error\": {}, \"amdahl_serial_fraction\": {}}},\n  \"speedup_at_max_threads_before\": {},\n  \"speedup_at_max_threads_after\": {},\n  \"serializing_component\": \"{serializing}\",\n  \"dominant_phase\": \"{dominant}\",\n  \"outcomes_identical\": {identical}\n}}\n",
        o.frames,
        o.width,
        o.height,
        o.injections,
        o.every_k,
        o.seed,
        o.threads,
        o.repeats,
        json_f(off.median),
        json_f(on.median),
        json_f(off.min),
        json_f(on.min),
        json_f(overhead_pct),
        overhead_ok,
        phase_rows_json(max_slots),
        phase_rows_json(max_mutex),
        max_slots.merged.counter(phase::RUNS_RESUMED),
        max_slots.merged.counter(phase::RUNS_FROM_SCRATCH),
        json_f(lock_share),
        json_f(max_slots.coverage()),
        json_f(max_slots.min_worker_coverage()),
        json_f(min_coverage_seen),
        json_f(usl.sigma),
        json_f(usl.kappa),
        json_f(usl.rms_error),
        json_f(amdahl_serial),
        json_f(speedup_before),
        json_f(speedup_after),
    );

    let md_path = o.out_dir.join("scaling_report.md");
    let json_path = o.out_dir.join("scaling_report.json");
    for (path, body) in [(&md_path, &md), (&json_path, &json), (&o.bench_out, &json)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let shown = path.display().to_string();
        vs_telemetry::emit("artifact", &[("path", Value::Str(&shown))]);
    }
    let mut manifest = vs_bench::manifest::Manifest::new("scaling_report")
        .u64(
            "config_digest",
            vs_bench::manifest::config_digest(&[
                o.frames as u64,
                o.width as u64,
                o.height as u64,
                o.injections as u64,
                o.every_k as u64,
                o.seed,
                o.repeats as u64,
                max_n as u64,
            ]),
        )
        .u64("injections", o.injections as u64)
        .u64("threads", max_n as u64)
        .u64("seed", o.seed)
        .f64(
            "runs_per_sec_on",
            o.injections as f64 / max_slots.wall.median,
        )
        .f64("overhead_pct", overhead_pct)
        .f64("speedup_after", speedup_after)
        .bool("identical", identical)
        .rates(&vs_fault::stats::outcome_rates(&reference));
    for name in phase::TOP {
        if let Some(h) = max_slots.merged.histogram(name) {
            manifest = manifest.phase(name, h);
        }
    }
    manifest.append_default();
    println!("\n{md}");

    // ---- Gates -----------------------------------------------------
    if !identical {
        eprintln!("error: a sweep campaign diverged from the metrics-off reference records");
        return ExitCode::FAILURE;
    }
    if min_coverage_seen < o.min_coverage {
        eprintln!(
            "error: attribution coverage {:.3} below required {:.3} — a worker phase is missing from the vocabulary",
            min_coverage_seen, o.min_coverage
        );
        return ExitCode::FAILURE;
    }
    if !overhead_ok {
        eprintln!(
            "error: metrics overhead {overhead_pct:+.2}% exceeds --overhead-gate {}%",
            o.overhead_gate_pct
        );
        return ExitCode::FAILURE;
    }
    if o.expect_scaling > 0.0 {
        if oversubscribed {
            println!(
                "note: --expect-scaling {} skipped — host_cores = {host_cores} < {max_n} threads, \
                 the requested speedup is physically unavailable on this host",
                o.expect_scaling
            );
        } else if speedup_after < o.expect_scaling {
            eprintln!(
                "error: speedup {speedup_after:.2}x at {max_n} threads below required {:.2}x",
                o.expect_scaling
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
