//! Per-kernel microbenchmark: times each SWAR/fixed-point kernel
//! against the scalar reference oracle it was proven bit-exact to, and
//! emits `BENCH_3.json`. With `--hd` it instead sweeps the runtime
//! SIMD dispatch levels (scalar / SWAR / SSE2 / AVX2) over HD frame
//! tiers and emits `BENCH_6.json`.
//!
//! ```text
//! kernel_bench [--threads N[,N...]] [--seed S] [--out FILE]
//!              [--trace FILE] [--smoke] [--check-speedups]
//!              [--hd] [--check-simd]
//! ```
//!
//! Six kernel rows, each `scalar_ns` / `swar_ns` / `speedup` /
//! `identical` (the SWAR side is pinned to the explicit SWAR entry
//! points, so these rows keep their meaning regardless of what the
//! runtime dispatcher would pick):
//!
//! - `blur5x5` — separable u16 fixed-point blur vs the f64
//!   `get_clamped` path
//! - `downsample` — `(acc + 2) >> 2` vs the f64 mean/round path
//! - `fast_detect` — SWAR 16-bit-lane segment test with popcount
//!   pre-reject vs the saturating-i64 classify + arc scan
//! - `warp_affine` — constant-divisor hoisting + float blend vs the
//!   per-pixel projective divide (rotation: arbitrary weights)
//! - `warp_halfpix` — the i64 fixed-point interpolator path (dyadic
//!   subpixel translation: every weight is k/2^15)
//! - `hamming` — shared XOR+popcount core with the 128-bit early exit
//!   vs the scalar oracle pair, driven by a two-nearest scan
//!
//! The `identical` flag re-verifies bit-exactness on the bench inputs
//! (outputs compared before timing), and a steady-allocation probe
//! pins the warmed `_into` paths at zero heap calls. Kernels run on a
//! dedicated sink-less thread so telemetry timers stay disabled —
//! the same conditions campaign workers see.
//!
//! An end-to-end row then runs the checkpointed GPR campaign at every
//! `--threads` count (BENCH_2-compatible workload defaults) and
//! cross-checks that all thread counts classify every injection
//! identically; `runs_per_sec_on` is directly comparable with
//! `BENCH_2.json`. `--check-speedups` additionally fails the process
//! if any kernel row regresses below 1.0× — the `scripts/verify.sh`
//! gate.
//!
//! # HD mode (`--hd`)
//!
//! For each HD tier (1280×720, 1920×1080, plus a 1919×1079
//! odd-dimension tier exercising pyramid-halving edge lanes), every
//! kernel is timed at each compiled dispatch level with the SWAR path
//! as the interleaved reference side, after a fresh bit-exactness
//! check against the scalar oracle. Rows whose batch coefficient of
//! variation exceeds 20% are flagged `unstable`. Row-band parallel
//! blur/warp rows are added only when the host has ≥ 2 cores, and an
//! end-to-end checkpointed-campaign row anchors the kernel numbers to
//! campaign throughput. `--check-simd` fails the process unless SSE2
//! reaches ≥ 1.5× over SWAR on at least two of {fast_detect,
//! warp_affine, warp_halfpix, hamming}; the AVX2 and row-band gates
//! arm only when the CPU features / core count permit (a note is
//! printed when they auto-skip).

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vs_bench::timing::{fmt_secs, measure_pair, Measurement};
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, CampaignConfig, CheckpointPolicy};
use vs_fault::spec::RegClass;
use vs_features::fast::{self, FastConfig, FastScratch};
use vs_features::{Descriptor, KeyPoint};
use vs_image::{
    downsample_half_into_level, downsample_half_into_scalar, downsample_half_into_swar,
    gaussian_blur_5x5_into_bands, gaussian_blur_5x5_into_level, gaussian_blur_5x5_into_scalar,
    gaussian_blur_5x5_into_swar, GrayImage, RgbImage, SimdLevel,
};
use vs_linalg::{Mat3, Vec2};
use vs_matching::{Match, RatioMatcher};
use vs_rng::SplitMix64;
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};
use vs_warp::{
    warp_perspective_offset_into_bands, warp_perspective_offset_into_level,
    warp_perspective_offset_into_scalar,
};

/// Process-wide allocation counter (bench binary only) — used to pin
/// the warmed kernel paths at zero allocations per call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

const USAGE: &str =
    "usage: kernel_bench [--threads N[,N...]] [--seed S] [--out FILE] [--trace FILE] [--smoke] [--check-speedups] [--hd] [--check-simd]";

struct BenchOpts {
    /// End-to-end campaign workload — BENCH_2-compatible defaults so
    /// `runs_per_sec_on` is directly comparable.
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    every_k: usize,
    seed: u64,
    /// Campaign thread counts; first is primary, rest are sweep reruns.
    threads: Vec<usize>,
    /// Kernel input sizes and per-side timing budget.
    kernel_w: usize,
    kernel_h: usize,
    queries: usize,
    train: usize,
    budget: Duration,
    out: std::path::PathBuf,
    trace: Option<std::path::PathBuf>,
    check_speedups: bool,
    /// HD dispatch-level sweep mode (`BENCH_6.json`).
    hd: bool,
    /// Fail unless the armed SIMD speedup gates pass (HD mode).
    check_simd: bool,
    /// `--smoke`: shrink the HD tiers too.
    smoke: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            frames: 16,
            width: 128,
            height: 96,
            injections: 120,
            every_k: 1,
            seed: 0xBE6C,
            threads: vec![vs_bench::host_cores()],
            kernel_w: 480,
            kernel_h: 360,
            queries: 256,
            train: 512,
            budget: Duration::from_millis(500),
            out: "BENCH_3.json".into(),
            trace: None,
            check_speedups: false,
            hd: false,
            check_simd: false,
            smoke: false,
        }
    }
}

fn parse_threads(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|s| s.trim().parse::<usize>().map_err(|_| "bad --threads"))
        .collect::<Result<_, _>>()?;
    if list.is_empty() || list.contains(&0) {
        return Err("--threads needs positive counts".into());
    }
    Ok(list)
}

fn parse(args: &[String]) -> Result<BenchOpts, String> {
    let mut o = BenchOpts::default();
    let mut out_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--threads" => o.threads = parse_threads(&val("--threads")?)?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--out" => {
                o.out = val("--out")?.into();
                out_set = true;
            }
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--check-speedups" => o.check_speedups = true,
            "--hd" => o.hd = true,
            "--check-simd" => o.check_simd = true,
            "--smoke" => {
                o.smoke = true;
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 24;
                o.kernel_w = 240;
                o.kernel_h = 180;
                o.queries = 64;
                o.train = 128;
                o.budget = Duration::from_millis(150);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if o.hd && !out_set {
        o.out = "BENCH_6.json".into();
    }
    Ok(o)
}

/// One kernel row: scalar-vs-SWAR timing, a fresh bit-exactness check
/// on the bench input, and the warmed path's allocations per call.
struct KernelRow {
    name: &'static str,
    scalar: Measurement,
    swar: Measurement,
    identical: bool,
    steady_allocs: u64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar.secs_per_iter / self.swar.secs_per_iter
    }
}

/// Time a scalar/SWAR closure pair with interleaved batches (drift
/// lands on both sides equally, so the speedup ratio is stable). Both
/// closures were already invoked at least once by the caller's equality
/// check, so the allocation probe sees warmed buffers: the optimized
/// `_into` paths must not touch the heap at steady state.
fn run_pair(
    name: &'static str,
    budget: Duration,
    identical: bool,
    mut scalar_f: impl FnMut(),
    mut swar_f: impl FnMut(),
) -> KernelRow {
    swar_f();
    let a0 = alloc_calls();
    for _ in 0..4 {
        swar_f();
    }
    let steady_allocs = (alloc_calls() - a0) / 4;
    let (scalar, swar) = measure_pair(budget, &mut scalar_f, &mut swar_f);
    let row = KernelRow {
        name,
        scalar,
        swar,
        identical,
        steady_allocs,
    };
    println!(
        "{name:<14} scalar {:>10}/iter   swar {:>10}/iter   {:>5.2}x   identical={} allocs={}",
        fmt_secs(scalar.secs_per_iter),
        fmt_secs(swar.secs_per_iter),
        row.speedup(),
        identical,
        steady_allocs
    );
    row
}

/// Two-nearest descriptor scan (the matcher inner loop's shape): for
/// each query, the nearest train index/distance under an early-exit
/// bound that tightens to the running second-best.
fn two_nearest(
    queries: &[Descriptor],
    train: &[Descriptor],
    out: &mut Vec<(usize, u32)>,
    dist: impl Fn(&Descriptor, &Descriptor, u32) -> Option<u32>,
) {
    out.clear();
    out.extend(queries.iter().map(|q| {
        let mut best = (usize::MAX, u32::MAX);
        let mut second = u32::MAX;
        for (j, t) in train.iter().enumerate() {
            if let Some(d) = dist(q, t, second) {
                if d < best.1 {
                    second = best.1;
                    best = (j, d);
                } else {
                    second = d;
                }
            }
        }
        best
    }));
}

/// Run every kernel row. Called on a dedicated sink-less thread:
/// telemetry is disabled there (`vs_telemetry::enabled()` is false), so
/// the timers the instrumented kernels would otherwise read stay off —
/// exactly the conditions campaign worker threads see.
fn bench_kernels(o: &BenchOpts) -> Vec<KernelRow> {
    let (kw, kh) = (o.kernel_w, o.kernel_h);
    let frame = render_input(
        &InputSpec::input2_preset()
            .with_frames(1)
            .with_frame_size(kw, kh),
    )
    .remove(0);
    let gray = frame.to_gray();
    let mut rows = Vec::new();

    // blur5x5: fixed-point separable pass vs f64 oracle.
    {
        let (mut tmp_a, mut out_a) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        let (mut tmp_b, mut out_b) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        gaussian_blur_5x5_into_scalar(&gray, &mut tmp_a, &mut out_a);
        gaussian_blur_5x5_into_swar(&gray, &mut tmp_b, &mut out_b);
        let identical = out_a == out_b;
        rows.push(run_pair(
            "blur5x5",
            o.budget,
            identical,
            || {
                gaussian_blur_5x5_into_scalar(&gray, &mut tmp_a, &mut out_a);
            },
            || {
                gaussian_blur_5x5_into_swar(&gray, &mut tmp_b, &mut out_b);
            },
        ));
    }

    // downsample: (acc + 2) >> 2 vs f64 mean/round oracle.
    {
        let mut out_a = GrayImage::new(0, 0);
        let mut out_b = GrayImage::new(0, 0);
        downsample_half_into_scalar(&gray, &mut out_a);
        downsample_half_into_swar(&gray, &mut out_b);
        let identical = out_a == out_b;
        rows.push(run_pair(
            "downsample",
            o.budget,
            identical,
            || {
                downsample_half_into_scalar(&gray, &mut out_a);
            },
            || {
                downsample_half_into_swar(&gray, &mut out_b);
            },
        ));
    }

    // fast_detect: SWAR segment test + pre-reject vs classify/arc-scan.
    {
        let cfg = FastConfig::default();
        let mut scratch_a = FastScratch::default();
        let mut scratch_b = FastScratch::default();
        let mut out_a: Vec<KeyPoint> = Vec::new();
        let mut out_b: Vec<KeyPoint> = Vec::new();
        fast::detect_into_scalar(&gray, &cfg, &mut scratch_a, &mut out_a).expect("fast scalar");
        fast::detect_into_level(&gray, &cfg, &mut scratch_b, &mut out_b, SimdLevel::Swar)
            .expect("fast swar");
        let identical = out_a == out_b && scratch_b.prereject() > 0;
        rows.push(run_pair(
            "fast_detect",
            o.budget,
            identical,
            || {
                fast::detect_into_scalar(&gray, &cfg, &mut scratch_a, &mut out_a).expect("fast");
            },
            || {
                fast::detect_into_level(&gray, &cfg, &mut scratch_b, &mut out_b, SimdLevel::Swar)
                    .expect("fast");
            },
        ));
    }

    // warp_affine: rotation — constant divisor, arbitrary blend weights
    // (float path with hoisted row terms).
    // warp_halfpix: dyadic subpixel translation — every weight k/2^15,
    // the i64 fixed-point interpolator path.
    let origin = Vec2::new(-2.0, 1.0);
    for (name, h) in [
        (
            "warp_affine",
            Mat3::translation(10.0, 5.0) * Mat3::rotation(0.1),
        ),
        ("warp_halfpix", Mat3::translation(3.5, -2.25)),
    ] {
        let (mut dst_a, mut mask_a) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        let (mut dst_b, mut mask_b) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        warp_perspective_offset_into_scalar(&frame, &h, kw, kh, origin, &mut dst_a, &mut mask_a)
            .expect("warp scalar");
        warp_perspective_offset_into_level(
            &frame,
            &h,
            kw,
            kh,
            origin,
            &mut dst_b,
            &mut mask_b,
            SimdLevel::Swar,
        )
        .expect("warp swar");
        let identical = dst_a == dst_b && mask_a == mask_b;
        rows.push(run_pair(
            name,
            o.budget,
            identical,
            || {
                warp_perspective_offset_into_scalar(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_a,
                    &mut mask_a,
                )
                .expect("warp");
            },
            || {
                warp_perspective_offset_into_level(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_b,
                    &mut mask_b,
                    SimdLevel::Swar,
                )
                .expect("warp");
            },
        ));
    }

    // hamming: two-nearest scan over random descriptors, bounded
    // early-exit core vs the scalar oracle.
    {
        let mut rng = SplitMix64::new(o.seed ^ 0xD15C);
        let mut gen_descs = |n: usize| -> Vec<Descriptor> {
            (0..n)
                .map(|_| Descriptor(std::array::from_fn(|_| rng.next_u64())))
                .collect()
        };
        let queries = gen_descs(o.queries);
        let train = gen_descs(o.train);
        let mut nearest_a = Vec::new();
        let mut nearest_b = Vec::new();
        two_nearest(&queries, &train, &mut nearest_a, |q, t, b| {
            q.hamming_bounded_scalar(t, b)
        });
        two_nearest(&queries, &train, &mut nearest_b, |q, t, b| {
            q.hamming_bounded(t, b)
        });
        let identical = nearest_a == nearest_b;
        rows.push(run_pair(
            "hamming",
            o.budget,
            identical,
            || {
                two_nearest(&queries, &train, &mut nearest_a, |q, t, b| {
                    q.hamming_bounded_scalar(t, b)
                });
                std::hint::black_box(&nearest_a);
            },
            || {
                two_nearest(&queries, &train, &mut nearest_b, |q, t, b| {
                    q.hamming_bounded(t, b)
                });
                std::hint::black_box(&nearest_b);
            },
        ));
    }

    rows
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

/// One HD-tier row: a dispatch level timed against an interleaved
/// reference side on the same input (SWAR for level rows, the
/// single-band dispatched kernel for row-band rows), plus a fresh
/// bit-exactness verdict against the scalar oracle.
struct HdRow {
    kernel: String,
    tier: String,
    level: SimdLevel,
    /// What the reference side is ("swar" or "single_band").
    ref_kind: &'static str,
    reference: Measurement,
    at_level: Measurement,
    identical: bool,
}

impl HdRow {
    fn speedup(&self) -> f64 {
        self.reference.secs_per_iter / self.at_level.secs_per_iter
    }

    /// Batch spread above 20% on either side: the row was measured
    /// under noise and its ratio should not be trusted as-is.
    fn unstable(&self) -> bool {
        self.reference.cv > 0.20 || self.at_level.cv > 0.20
    }
}

#[allow(clippy::too_many_arguments)]
fn run_hd_pair(
    kernel: &str,
    tier: &str,
    level: SimdLevel,
    ref_kind: &'static str,
    budget: Duration,
    identical: bool,
    mut ref_f: impl FnMut(),
    mut level_f: impl FnMut(),
) -> HdRow {
    let (reference, at_level) = measure_pair(budget, &mut ref_f, &mut level_f);
    let row = HdRow {
        kernel: kernel.into(),
        tier: tier.into(),
        level,
        ref_kind,
        reference,
        at_level,
        identical,
    };
    println!(
        "{:<24} {:<6} {ref_kind} {:>11}/iter   level {:>11}/iter   {:>6.2}x   identical={}{}",
        format!("{kernel}@{tier}"),
        level.as_str(),
        fmt_secs(reference.secs_per_iter),
        fmt_secs(at_level.secs_per_iter),
        row.speedup(),
        identical,
        if row.unstable() { "  UNSTABLE" } else { "" }
    );
    row
}

/// The dispatch levels the HD sweep times against the SWAR reference:
/// everything compiled-and-available except SWAR itself.
fn hd_levels() -> Vec<SimdLevel> {
    SimdLevel::ALL
        .into_iter()
        .filter(|&l| l != SimdLevel::Swar && l.available())
        .collect()
}

/// HD-tier dispatch-level sweep. Full tiers run every kernel; the
/// odd-dimension tier runs only blur + downsample (its purpose is the
/// pyramid-halving edge lanes).
fn bench_hd(o: &BenchOpts) -> Vec<HdRow> {
    let levels = hd_levels();
    let tiers: &[(usize, usize, bool)] = if o.smoke {
        &[(639, 359, true)]
    } else {
        &[(1280, 720, true), (1920, 1080, true), (1919, 1079, false)]
    };
    let mut rows = Vec::new();
    for &(kw, kh, full) in tiers {
        let tier = format!("{kw}x{kh}");
        let frame = render_input(
            &InputSpec::input2_preset()
                .with_frames(1)
                .with_frame_size(kw, kh),
        )
        .remove(0);
        let gray = frame.to_gray();

        {
            let (mut tmp_o, mut out_o) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
            gaussian_blur_5x5_into_scalar(&gray, &mut tmp_o, &mut out_o);
            for &level in &levels {
                let (mut tmp_s, mut out_s) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
                let (mut tmp_l, mut out_l) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
                gaussian_blur_5x5_into_swar(&gray, &mut tmp_s, &mut out_s);
                gaussian_blur_5x5_into_level(&gray, &mut tmp_l, &mut out_l, level);
                let identical = out_l == out_o && out_s == out_o;
                rows.push(run_hd_pair(
                    "blur5x5",
                    &tier,
                    level,
                    "swar",
                    o.budget,
                    identical,
                    || {
                        gaussian_blur_5x5_into_swar(&gray, &mut tmp_s, &mut out_s);
                    },
                    || {
                        gaussian_blur_5x5_into_level(&gray, &mut tmp_l, &mut out_l, level);
                    },
                ));
            }
        }

        {
            let mut out_o = GrayImage::new(0, 0);
            downsample_half_into_scalar(&gray, &mut out_o);
            for &level in &levels {
                let mut out_s = GrayImage::new(0, 0);
                let mut out_l = GrayImage::new(0, 0);
                downsample_half_into_swar(&gray, &mut out_s);
                downsample_half_into_level(&gray, &mut out_l, level);
                let identical = out_l == out_o && out_s == out_o;
                rows.push(run_hd_pair(
                    "downsample",
                    &tier,
                    level,
                    "swar",
                    o.budget,
                    identical,
                    || {
                        downsample_half_into_swar(&gray, &mut out_s);
                    },
                    || {
                        downsample_half_into_level(&gray, &mut out_l, level);
                    },
                ));
            }
        }

        if !full {
            continue;
        }

        {
            let cfg = FastConfig::default();
            let mut scratch_o = FastScratch::default();
            let mut out_o: Vec<KeyPoint> = Vec::new();
            fast::detect_into_scalar(&gray, &cfg, &mut scratch_o, &mut out_o).expect("fast");
            for &level in &levels {
                let (mut scratch_s, mut scratch_l) =
                    (FastScratch::default(), FastScratch::default());
                let (mut out_s, mut out_l): (Vec<KeyPoint>, Vec<KeyPoint>) =
                    (Vec::new(), Vec::new());
                fast::detect_into_level(&gray, &cfg, &mut scratch_s, &mut out_s, SimdLevel::Swar)
                    .expect("fast");
                fast::detect_into_level(&gray, &cfg, &mut scratch_l, &mut out_l, level)
                    .expect("fast");
                let identical = out_l == out_o && out_s == out_o;
                rows.push(run_hd_pair(
                    "fast_detect",
                    &tier,
                    level,
                    "swar",
                    o.budget,
                    identical,
                    || {
                        fast::detect_into_level(
                            &gray,
                            &cfg,
                            &mut scratch_s,
                            &mut out_s,
                            SimdLevel::Swar,
                        )
                        .expect("fast");
                    },
                    || {
                        fast::detect_into_level(&gray, &cfg, &mut scratch_l, &mut out_l, level)
                            .expect("fast");
                    },
                ));
            }
        }

        let origin = Vec2::new(-2.0, 1.0);
        for (name, h) in [
            (
                "warp_affine",
                Mat3::translation(10.0, 5.0) * Mat3::rotation(0.1),
            ),
            ("warp_halfpix", Mat3::translation(3.5, -2.25)),
        ] {
            let (mut dst_o, mut mask_o) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
            warp_perspective_offset_into_scalar(
                &frame,
                &h,
                kw,
                kh,
                origin,
                &mut dst_o,
                &mut mask_o,
            )
            .expect("warp");
            for &level in &levels {
                let (mut dst_s, mut mask_s) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
                let (mut dst_l, mut mask_l) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
                warp_perspective_offset_into_level(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_s,
                    &mut mask_s,
                    SimdLevel::Swar,
                )
                .expect("warp");
                warp_perspective_offset_into_level(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_l,
                    &mut mask_l,
                    level,
                )
                .expect("warp");
                let identical =
                    dst_l == dst_o && mask_l == mask_o && dst_s == dst_o && mask_s == mask_o;
                rows.push(run_hd_pair(
                    name,
                    &tier,
                    level,
                    "swar",
                    o.budget,
                    identical,
                    || {
                        warp_perspective_offset_into_level(
                            &frame,
                            &h,
                            kw,
                            kh,
                            origin,
                            &mut dst_s,
                            &mut mask_s,
                            SimdLevel::Swar,
                        )
                        .expect("warp");
                    },
                    || {
                        warp_perspective_offset_into_level(
                            &frame,
                            &h,
                            kw,
                            kh,
                            origin,
                            &mut dst_l,
                            &mut mask_l,
                            level,
                        )
                        .expect("warp");
                    },
                ));
            }
        }
    }

    // hamming: the real ratio-matcher inner loop over HD-scale
    // descriptor sets (resolution-independent, so one tier).
    {
        let mut rng = SplitMix64::new(o.seed ^ 0xD15C);
        let mut gen_descs = |n: usize| -> Vec<Descriptor> {
            (0..n)
                .map(|_| Descriptor(std::array::from_fn(|_| rng.next_u64())))
                .collect()
        };
        let queries = gen_descs(o.queries * 2);
        let train = gen_descs(o.train * 2);
        let tier = format!("{}q{}t", queries.len(), train.len());
        let ratio = RatioMatcher::default();
        let mut out_o: Vec<Match> = Vec::new();
        ratio
            .matches_into_level(&queries, &train, &mut out_o, SimdLevel::Scalar)
            .expect("hamming");
        for &level in &levels {
            let (mut out_s, mut out_l): (Vec<Match>, Vec<Match>) = (Vec::new(), Vec::new());
            ratio
                .matches_into_level(&queries, &train, &mut out_s, SimdLevel::Swar)
                .expect("hamming");
            ratio
                .matches_into_level(&queries, &train, &mut out_l, level)
                .expect("hamming");
            let identical = out_l == out_o && out_s == out_o;
            rows.push(run_hd_pair(
                "hamming",
                &tier,
                level,
                "swar",
                o.budget,
                identical,
                || {
                    ratio
                        .matches_into_level(&queries, &train, &mut out_s, SimdLevel::Swar)
                        .expect("hamming");
                    std::hint::black_box(&out_s);
                },
                || {
                    ratio
                        .matches_into_level(&queries, &train, &mut out_l, level)
                        .expect("hamming");
                    std::hint::black_box(&out_l);
                },
            ));
        }
    }

    rows
}

/// Row-band parallel blur/warp rows: banded vs single-band dispatched
/// kernels. Only meaningful with ≥ 2 host cores; skipped (with a note)
/// otherwise, so the serial-host CI lane never measures fake
/// parallelism.
fn bench_hd_bands(o: &BenchOpts, host_cores: usize) -> (Vec<HdRow>, Option<String>) {
    if host_cores < 2 {
        let note = format!("row-band parallel rows skipped: host_cores = {host_cores} < 2");
        println!("note: {note}");
        return (Vec::new(), Some(note));
    }
    let bands = host_cores.min(4);
    let level = vs_image::dispatch::level();
    let (kw, kh) = if o.smoke { (639, 359) } else { (1920, 1080) };
    let tier = format!("{kw}x{kh}");
    let frame = render_input(
        &InputSpec::input2_preset()
            .with_frames(1)
            .with_frame_size(kw, kh),
    )
    .remove(0);
    let gray = frame.to_gray();
    let mut rows = Vec::new();

    {
        let (mut tmp_o, mut out_o) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        let (mut tmp_s, mut out_s) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        let (mut tmp_b, mut out_b) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        gaussian_blur_5x5_into_scalar(&gray, &mut tmp_o, &mut out_o);
        gaussian_blur_5x5_into_level(&gray, &mut tmp_s, &mut out_s, level);
        gaussian_blur_5x5_into_bands(&gray, &mut tmp_b, &mut out_b, bands);
        let identical = out_s == out_o && out_b == out_o;
        rows.push(run_hd_pair(
            &format!("blur5x5_bands{bands}"),
            &tier,
            level,
            "single_band",
            o.budget,
            identical,
            || {
                gaussian_blur_5x5_into_level(&gray, &mut tmp_s, &mut out_s, level);
            },
            || {
                gaussian_blur_5x5_into_bands(&gray, &mut tmp_b, &mut out_b, bands);
            },
        ));
    }

    {
        let h = Mat3::translation(10.0, 5.0) * Mat3::rotation(0.1);
        let origin = Vec2::new(-2.0, 1.0);
        let (mut dst_o, mut mask_o) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        let (mut dst_s, mut mask_s) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        let (mut dst_b, mut mask_b) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        warp_perspective_offset_into_scalar(&frame, &h, kw, kh, origin, &mut dst_o, &mut mask_o)
            .expect("warp");
        warp_perspective_offset_into_level(
            &frame,
            &h,
            kw,
            kh,
            origin,
            &mut dst_s,
            &mut mask_s,
            level,
        )
        .expect("warp");
        warp_perspective_offset_into_bands(
            &frame,
            &h,
            kw,
            kh,
            origin,
            &mut dst_b,
            &mut mask_b,
            bands,
        )
        .expect("warp");
        let identical = dst_s == dst_o && mask_s == mask_o && dst_b == dst_o && mask_b == mask_o;
        rows.push(run_hd_pair(
            &format!("warp_affine_bands{bands}"),
            &tier,
            level,
            "single_band",
            o.budget,
            identical,
            || {
                warp_perspective_offset_into_level(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_s,
                    &mut mask_s,
                    level,
                )
                .expect("warp");
            },
            || {
                warp_perspective_offset_into_bands(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_b,
                    &mut mask_b,
                    bands,
                )
                .expect("warp");
            },
        ));
    }

    (rows, None)
}

/// Kernels whose SIMD speedup the `--check-simd` gate inspects.
const GATE_KERNELS: [&str; 4] = ["fast_detect", "warp_affine", "warp_halfpix", "hamming"];

fn hd_row_json(r: &HdRow) -> String {
    format!(
        "    {{\"kernel\": \"{}\", \"tier\": \"{}\", \"level\": \"{}\", \"ref_kind\": \"{}\", \"ref_ns\": {}, \"level_ns\": {}, \"ref_min_ns\": {}, \"level_min_ns\": {}, \"speedup\": {}, \"ref_cv\": {}, \"level_cv\": {}, \"unstable\": {}, \"identical\": {}, \"batches\": {}}}",
        r.kernel,
        r.tier,
        r.level.as_str(),
        r.ref_kind,
        json_f(r.reference.secs_per_iter * 1e9),
        json_f(r.at_level.secs_per_iter * 1e9),
        json_f(r.reference.min_secs_per_iter * 1e9),
        json_f(r.at_level.min_secs_per_iter * 1e9),
        json_f(r.speedup()),
        json_f(r.reference.cv),
        json_f(r.at_level.cv),
        r.unstable(),
        r.identical,
        r.reference.batches.min(r.at_level.batches)
    )
}

/// HD mode entry: dispatch-level sweep, row-band rows, end-to-end
/// campaign anchor, gates, `BENCH_6.json`.
fn run_hd(o: &BenchOpts, host_cores: usize) -> ExitCode {
    let features = vs_image::dispatch::detected_features();
    vs_telemetry::emit(
        "bench_config",
        &[
            ("bench", Value::Str("kernel_simd_hd")),
            ("seed", Value::U64(o.seed)),
            ("host_cores", Value::U64(host_cores as u64)),
            ("detected_features", Value::Str(&features)),
        ],
    );
    println!("detected features: {features}; host cores: {host_cores}");

    // All kernel timing on a sink-less thread (telemetry timers off —
    // the same conditions campaign workers see).
    let (rows, band_rows, band_note) = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let rows = bench_hd(o);
                let (band_rows, band_note) = bench_hd_bands(o, host_cores);
                (rows, band_rows, band_note)
            })
            .join()
            .expect("kernel bench thread panicked")
    });
    for r in rows.iter().chain(&band_rows) {
        vs_telemetry::emit(
            "hd_kernel_result",
            &[
                ("kernel", Value::Str(&r.kernel)),
                ("tier", Value::Str(&r.tier)),
                ("level", Value::Str(r.level.as_str())),
                ("ref_kind", Value::Str(r.ref_kind)),
                ("ref_ns", Value::F64(r.reference.secs_per_iter * 1e9)),
                ("level_ns", Value::F64(r.at_level.secs_per_iter * 1e9)),
                ("speedup", Value::F64(r.speedup())),
                ("unstable", Value::Bool(r.unstable())),
                ("identical", Value::Bool(r.identical)),
            ],
        );
    }

    // End-to-end anchor: one checkpointed GPR campaign at the primary
    // thread count, BENCH_2-compatible workload defaults.
    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    let cfg = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(o.threads[0])
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
    let t0 = Instant::now();
    let results = campaign::run_campaign_checkpointed(&w, &ck, &cfg);
    let e2e_secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(results.len());
    let runs_on = o.injections as f64 / e2e_secs;
    println!(
        "end_to_end: {} injections at {} threads in {:.2}s ({:.2} runs/s)",
        o.injections, o.threads[0], e2e_secs, runs_on
    );
    vs_telemetry::emit(
        "bench_result",
        &[
            ("runs_per_sec_on", Value::F64(runs_on)),
            ("kernels", Value::U64((rows.len() + band_rows.len()) as u64)),
        ],
    );

    // Gates. SSE2 is always armed (x86-64 baseline); AVX2 and row-band
    // arm only when the CPU / core count permits.
    let wins = |lvl: SimdLevel| {
        GATE_KERNELS
            .iter()
            .filter(|k| {
                rows.iter()
                    .any(|r| r.kernel == **k && r.level == lvl && r.speedup() >= 1.5)
            })
            .count()
    };
    let sse2_armed = SimdLevel::Sse2.available();
    let sse2_wins = wins(SimdLevel::Sse2);
    let sse2_pass = sse2_wins >= 2;
    let avx2_armed = SimdLevel::Avx2.available();
    let avx2_wins = wins(SimdLevel::Avx2);
    let avx2_pass = avx2_wins >= 2;
    let band_armed = host_cores >= 2;
    let band_pass = band_rows.iter().any(|r| r.speedup() >= 1.2);
    if sse2_armed {
        println!("gate sse2: {sse2_wins}/4 gate kernels at >=1.5x over swar -> pass={sse2_pass}");
    } else {
        println!("note: sse2 gate skipped (not an x86-64 host)");
    }
    if avx2_armed {
        println!("gate avx2: {avx2_wins}/4 gate kernels at >=1.5x over swar -> pass={avx2_pass}");
    } else {
        println!("note: avx2 gate skipped (avx2 not detected; features: {features})");
    }
    if band_armed {
        println!(
            "gate bands: best {:.2}x -> pass={band_pass}",
            band_rows.iter().map(|r| r.speedup()).fold(0.0, f64::max)
        );
    } else {
        println!("note: row-band gate skipped (host_cores = {host_cores} < 2)");
    }

    let rows_json = rows.iter().map(hd_row_json).collect::<Vec<_>>().join(",\n");
    let band_json = band_rows
        .iter()
        .map(hd_row_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"kernel_simd_hd\",\n  \"detected_features\": \"{features}\",\n  \"host_cores\": {host_cores},\n  \"seed\": {},\n  \"rows\": [\n{rows_json}\n  ],\n  \"band_rows\": [{}{band_json}{}],\n  \"band_note\": {},\n  \"end_to_end\": {{\"injections\": {}, \"threads\": {}, \"frames\": {}, \"frame_size\": [{}, {}], \"on_secs\": {}, \"runs_per_sec_on\": {}}},\n  \"gates\": {{\"sse2_armed\": {sse2_armed}, \"sse2_wins\": {sse2_wins}, \"sse2_pass\": {sse2_pass}, \"avx2_armed\": {avx2_armed}, \"avx2_wins\": {avx2_wins}, \"avx2_pass\": {avx2_pass}, \"band_armed\": {band_armed}, \"band_pass\": {band_pass}}}\n}}\n",
        o.seed,
        if band_rows.is_empty() { "" } else { "\n" },
        if band_rows.is_empty() { "" } else { "\n  " },
        band_note
            .as_ref()
            .map_or("null".to_string(), |n| format!("\"{n}\"")),
        o.injections,
        o.threads[0],
        o.frames,
        o.width,
        o.height,
        json_f(e2e_secs),
        json_f(runs_on),
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("error: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let out_path = o.out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);

    if let Some(bad) = rows.iter().chain(&band_rows).find(|r| !r.identical) {
        eprintln!(
            "error: {}@{} at level {} diverged from the scalar oracle",
            bad.kernel,
            bad.tier,
            bad.level.as_str()
        );
        return ExitCode::FAILURE;
    }
    if o.check_simd {
        if sse2_armed && !sse2_pass {
            eprintln!("error: sse2 gate failed ({sse2_wins}/4 gate kernels at >=1.5x, need >=2)");
            return ExitCode::FAILURE;
        }
        if avx2_armed && !avx2_pass {
            eprintln!("error: avx2 gate failed ({avx2_wins}/4 gate kernels at >=1.5x, need >=2)");
            return ExitCode::FAILURE;
        }
        if band_armed && !band_pass {
            eprintln!("error: row-band gate failed (no banded row at >=1.2x)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    vs_telemetry::set_trace_seed(o.seed);
    let _telemetry = vs_telemetry::install(sink);
    let host_cores = vs_bench::host_cores();
    if o.hd {
        return run_hd(&o, host_cores);
    }
    vs_telemetry::emit(
        "bench_config",
        &[
            ("bench", Value::Str("kernel_microbench")),
            ("kernel_width", Value::U64(o.kernel_w as u64)),
            ("kernel_height", Value::U64(o.kernel_h as u64)),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads[0] as u64)),
            ("seed", Value::U64(o.seed)),
            ("host_cores", Value::U64(host_cores as u64)),
        ],
    );

    // Kernel rows on a sink-less thread (telemetry timers disabled, no
    // per-call event spam from the instrumented kernels).
    let rows = std::thread::scope(|scope| {
        scope
            .spawn(|| bench_kernels(&o))
            .join()
            .expect("kernel bench thread panicked")
    });
    for r in &rows {
        vs_telemetry::emit(
            "kernel_result",
            &[
                ("kernel", Value::Str(r.name)),
                ("scalar_ns", Value::F64(r.scalar.secs_per_iter * 1e9)),
                ("swar_ns", Value::F64(r.swar.secs_per_iter * 1e9)),
                ("speedup", Value::F64(r.speedup())),
                ("identical", Value::Bool(r.identical)),
                ("steady_allocs", Value::U64(r.steady_allocs)),
            ],
        );
    }

    // End-to-end: the checkpointed GPR campaign at every requested
    // thread count, all counts cross-checked for identical outcomes.
    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    let mut sweep: Vec<(usize, f64, bool)> = Vec::new();
    let mut primary: Option<Vec<campaign::Injection<<VsWorkload as campaign::Workload>::Output>>> =
        None;
    let mut sweep_identical = true;
    for &n in &o.threads {
        let cfg = CampaignConfig::new(RegClass::Gpr, o.injections)
            .seed(o.seed)
            .threads(n)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
        let t0 = Instant::now();
        let results = campaign::run_campaign_checkpointed(&w, &ck, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let same = primary.as_ref().is_none_or(|p: &Vec<_>| {
            p.len() == results.len()
                && p.iter()
                    .zip(&results)
                    .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired)
        });
        sweep_identical &= same;
        vs_telemetry::emit(
            "thread_sweep",
            &[
                ("threads", Value::U64(n as u64)),
                ("on_secs", Value::F64(secs)),
                ("runs_per_sec_on", Value::F64(o.injections as f64 / secs)),
                ("identical", Value::Bool(same)),
                ("oversubscribed", Value::Bool(n > host_cores)),
            ],
        );
        sweep.push((n, secs, same));
        if primary.is_none() {
            primary = Some(results);
        }
    }
    let runs_on = o.injections as f64 / sweep[0].1;

    let kernels_identical = rows.iter().all(|r| r.identical);
    let kernels_alloc_free = rows.iter().all(|r| r.steady_allocs == 0);
    let outcomes_identical = kernels_identical && sweep_identical;
    vs_telemetry::emit(
        "bench_result",
        &[
            ("runs_per_sec_on", Value::F64(runs_on)),
            ("kernels", Value::U64(rows.len() as u64)),
            ("identical", Value::Bool(outcomes_identical)),
        ],
    );

    let kernel_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"swar_ns\": {}, \"scalar_min_ns\": {}, \"swar_min_ns\": {}, \"scalar_mean_ns\": {}, \"swar_mean_ns\": {}, \"batches\": {}, \"speedup\": {}, \"identical\": {}, \"steady_allocs\": {}}}",
                r.name,
                json_f(r.scalar.secs_per_iter * 1e9),
                json_f(r.swar.secs_per_iter * 1e9),
                json_f(r.scalar.min_secs_per_iter * 1e9),
                json_f(r.swar.min_secs_per_iter * 1e9),
                json_f(r.scalar.mean_secs_per_iter * 1e9),
                json_f(r.swar.mean_secs_per_iter * 1e9),
                r.scalar.batches.min(r.swar.batches),
                json_f(r.speedup()),
                r.identical,
                r.steady_allocs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sweep_json = sweep
        .iter()
        .map(|&(n, secs, same)| {
            format!(
                "    {{\"threads\": {n}, \"on_secs\": {}, \"runs_per_sec_on\": {}, \"identical\": {same}, \"oversubscribed\": {}}}",
                json_f(secs),
                json_f(o.injections as f64 / secs),
                n > host_cores
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"kernel_microbench\",\n  \"kernel_frame_size\": [{}, {}],\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections\": {},\n  \"checkpoint_every_k\": {},\n  \"seed\": {},\n  \"host_cores\": {},\n  \"kernels\": [\n{kernel_json}\n  ],\n  \"runs_per_sec_on\": {},\n  \"thread_sweep\": [\n{sweep_json}\n  ],\n  \"outcomes_identical\": {}\n}}\n",
        o.kernel_w,
        o.kernel_h,
        o.frames,
        o.width,
        o.height,
        o.injections,
        o.every_k,
        o.seed,
        host_cores,
        json_f(runs_on),
        outcomes_identical
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("error: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let out_path = o.out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);
    let kernel_speedup_min = rows
        .iter()
        .map(KernelRow::speedup)
        .fold(f64::INFINITY, f64::min);
    let mut manifest = vs_bench::manifest::Manifest::new("kernel_bench")
        .u64(
            "config_digest",
            vs_bench::manifest::config_digest(&[
                o.kernel_w as u64,
                o.kernel_h as u64,
                o.frames as u64,
                o.width as u64,
                o.height as u64,
                o.injections as u64,
                o.every_k as u64,
                o.seed,
            ]),
        )
        .u64("injections", o.injections as u64)
        .u64("threads", o.threads[0] as u64)
        .u64("seed", o.seed)
        .u64("kernels", rows.len() as u64)
        .f64("runs_per_sec_on", runs_on)
        .f64("kernel_speedup_min", kernel_speedup_min)
        .bool("identical", outcomes_identical);
    if let Some(primary) = &primary {
        manifest = manifest.rates(&vs_fault::stats::outcome_rates(primary));
    }
    manifest.append_default();

    if !kernels_identical {
        eprintln!("error: a SWAR kernel diverged from its scalar oracle");
        return ExitCode::FAILURE;
    }
    if !sweep_identical {
        eprintln!("error: thread sweep diverged from primary campaign outcomes");
        return ExitCode::FAILURE;
    }
    if !kernels_alloc_free {
        eprintln!("error: a warmed kernel path still allocates at steady state");
        return ExitCode::FAILURE;
    }
    if o.check_speedups {
        for r in &rows {
            if r.speedup() < 1.0 {
                eprintln!("error: kernel {} regressed ({:.3}x)", r.name, r.speedup());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
