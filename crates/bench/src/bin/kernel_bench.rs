//! Per-kernel microbenchmark: times each SWAR/fixed-point kernel
//! against the scalar reference oracle it was proven bit-exact to, and
//! emits `BENCH_3.json`.
//!
//! ```text
//! kernel_bench [--threads N[,N...]] [--seed S] [--out FILE]
//!              [--trace FILE] [--smoke] [--check-speedups]
//! ```
//!
//! Six kernel rows, each `scalar_ns` / `swar_ns` / `speedup` /
//! `identical`:
//!
//! - `blur5x5` — separable u16 fixed-point blur vs the f64
//!   `get_clamped` path
//! - `downsample` — `(acc + 2) >> 2` vs the f64 mean/round path
//! - `fast_detect` — SWAR 16-bit-lane segment test with popcount
//!   pre-reject vs the saturating-i64 classify + arc scan
//! - `warp_affine` — constant-divisor hoisting + float blend vs the
//!   per-pixel projective divide (rotation: arbitrary weights)
//! - `warp_halfpix` — the i64 fixed-point interpolator path (dyadic
//!   subpixel translation: every weight is k/2^15)
//! - `hamming` — shared XOR+popcount core with the 128-bit early exit
//!   vs the scalar oracle pair, driven by a two-nearest scan
//!
//! The `identical` flag re-verifies bit-exactness on the bench inputs
//! (outputs compared before timing), and a steady-allocation probe
//! pins the warmed `_into` paths at zero heap calls. Kernels run on a
//! dedicated sink-less thread so telemetry timers stay disabled —
//! the same conditions campaign workers see.
//!
//! An end-to-end row then runs the checkpointed GPR campaign at every
//! `--threads` count (BENCH_2-compatible workload defaults) and
//! cross-checks that all thread counts classify every injection
//! identically; `runs_per_sec_on` is directly comparable with
//! `BENCH_2.json`. `--check-speedups` additionally fails the process
//! if any kernel row regresses below 1.0× — the `scripts/verify.sh`
//! gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vs_bench::timing::{fmt_secs, measure_pair, Measurement};
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, CampaignConfig, CheckpointPolicy};
use vs_fault::spec::RegClass;
use vs_features::fast::{self, FastConfig, FastScratch};
use vs_features::{Descriptor, KeyPoint};
use vs_image::{
    downsample_half_into, downsample_half_into_scalar, gaussian_blur_5x5_into,
    gaussian_blur_5x5_into_scalar, GrayImage, RgbImage,
};
use vs_linalg::{Mat3, Vec2};
use vs_rng::SplitMix64;
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};
use vs_warp::{warp_perspective_offset_into, warp_perspective_offset_into_scalar};

/// Process-wide allocation counter (bench binary only) — used to pin
/// the warmed kernel paths at zero allocations per call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

const USAGE: &str =
    "usage: kernel_bench [--threads N[,N...]] [--seed S] [--out FILE] [--trace FILE] [--smoke] [--check-speedups]";

struct BenchOpts {
    /// End-to-end campaign workload — BENCH_2-compatible defaults so
    /// `runs_per_sec_on` is directly comparable.
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    every_k: usize,
    seed: u64,
    /// Campaign thread counts; first is primary, rest are sweep reruns.
    threads: Vec<usize>,
    /// Kernel input sizes and per-side timing budget.
    kernel_w: usize,
    kernel_h: usize,
    queries: usize,
    train: usize,
    budget: Duration,
    out: std::path::PathBuf,
    trace: Option<std::path::PathBuf>,
    check_speedups: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            frames: 16,
            width: 128,
            height: 96,
            injections: 120,
            every_k: 1,
            seed: 0xBE6C,
            threads: vec![std::thread::available_parallelism().map_or(1, |n| n.get())],
            kernel_w: 480,
            kernel_h: 360,
            queries: 256,
            train: 512,
            budget: Duration::from_millis(500),
            out: "BENCH_3.json".into(),
            trace: None,
            check_speedups: false,
        }
    }
}

fn parse_threads(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|s| s.trim().parse::<usize>().map_err(|_| "bad --threads"))
        .collect::<Result<_, _>>()?;
    if list.is_empty() || list.contains(&0) {
        return Err("--threads needs positive counts".into());
    }
    Ok(list)
}

fn parse(args: &[String]) -> Result<BenchOpts, String> {
    let mut o = BenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--threads" => o.threads = parse_threads(&val("--threads")?)?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--out" => o.out = val("--out")?.into(),
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--check-speedups" => o.check_speedups = true,
            "--smoke" => {
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 24;
                o.kernel_w = 240;
                o.kernel_h = 180;
                o.queries = 64;
                o.train = 128;
                o.budget = Duration::from_millis(150);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(o)
}

/// One kernel row: scalar-vs-SWAR timing, a fresh bit-exactness check
/// on the bench input, and the warmed path's allocations per call.
struct KernelRow {
    name: &'static str,
    scalar: Measurement,
    swar: Measurement,
    identical: bool,
    steady_allocs: u64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar.secs_per_iter / self.swar.secs_per_iter
    }
}

/// Time a scalar/SWAR closure pair with interleaved batches (drift
/// lands on both sides equally, so the speedup ratio is stable). Both
/// closures were already invoked at least once by the caller's equality
/// check, so the allocation probe sees warmed buffers: the optimized
/// `_into` paths must not touch the heap at steady state.
fn run_pair(
    name: &'static str,
    budget: Duration,
    identical: bool,
    mut scalar_f: impl FnMut(),
    mut swar_f: impl FnMut(),
) -> KernelRow {
    swar_f();
    let a0 = alloc_calls();
    for _ in 0..4 {
        swar_f();
    }
    let steady_allocs = (alloc_calls() - a0) / 4;
    let (scalar, swar) = measure_pair(budget, &mut scalar_f, &mut swar_f);
    let row = KernelRow {
        name,
        scalar,
        swar,
        identical,
        steady_allocs,
    };
    println!(
        "{name:<14} scalar {:>10}/iter   swar {:>10}/iter   {:>5.2}x   identical={} allocs={}",
        fmt_secs(scalar.secs_per_iter),
        fmt_secs(swar.secs_per_iter),
        row.speedup(),
        identical,
        steady_allocs
    );
    row
}

/// Two-nearest descriptor scan (the matcher inner loop's shape): for
/// each query, the nearest train index/distance under an early-exit
/// bound that tightens to the running second-best.
fn two_nearest(
    queries: &[Descriptor],
    train: &[Descriptor],
    out: &mut Vec<(usize, u32)>,
    dist: impl Fn(&Descriptor, &Descriptor, u32) -> Option<u32>,
) {
    out.clear();
    out.extend(queries.iter().map(|q| {
        let mut best = (usize::MAX, u32::MAX);
        let mut second = u32::MAX;
        for (j, t) in train.iter().enumerate() {
            if let Some(d) = dist(q, t, second) {
                if d < best.1 {
                    second = best.1;
                    best = (j, d);
                } else {
                    second = d;
                }
            }
        }
        best
    }));
}

/// Run every kernel row. Called on a dedicated sink-less thread:
/// telemetry is disabled there (`vs_telemetry::enabled()` is false), so
/// the timers the instrumented kernels would otherwise read stay off —
/// exactly the conditions campaign worker threads see.
fn bench_kernels(o: &BenchOpts) -> Vec<KernelRow> {
    let (kw, kh) = (o.kernel_w, o.kernel_h);
    let frame = render_input(
        &InputSpec::input2_preset()
            .with_frames(1)
            .with_frame_size(kw, kh),
    )
    .remove(0);
    let gray = frame.to_gray();
    let mut rows = Vec::new();

    // blur5x5: fixed-point separable pass vs f64 oracle.
    {
        let (mut tmp_a, mut out_a) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        let (mut tmp_b, mut out_b) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        gaussian_blur_5x5_into_scalar(&gray, &mut tmp_a, &mut out_a);
        gaussian_blur_5x5_into(&gray, &mut tmp_b, &mut out_b);
        let identical = out_a == out_b;
        rows.push(run_pair(
            "blur5x5",
            o.budget,
            identical,
            || {
                gaussian_blur_5x5_into_scalar(&gray, &mut tmp_a, &mut out_a);
            },
            || {
                gaussian_blur_5x5_into(&gray, &mut tmp_b, &mut out_b);
            },
        ));
    }

    // downsample: (acc + 2) >> 2 vs f64 mean/round oracle.
    {
        let mut out_a = GrayImage::new(0, 0);
        let mut out_b = GrayImage::new(0, 0);
        downsample_half_into_scalar(&gray, &mut out_a);
        downsample_half_into(&gray, &mut out_b);
        let identical = out_a == out_b;
        rows.push(run_pair(
            "downsample",
            o.budget,
            identical,
            || {
                downsample_half_into_scalar(&gray, &mut out_a);
            },
            || {
                downsample_half_into(&gray, &mut out_b);
            },
        ));
    }

    // fast_detect: SWAR segment test + pre-reject vs classify/arc-scan.
    {
        let cfg = FastConfig::default();
        let mut scratch_a = FastScratch::default();
        let mut scratch_b = FastScratch::default();
        let mut out_a: Vec<KeyPoint> = Vec::new();
        let mut out_b: Vec<KeyPoint> = Vec::new();
        fast::detect_into_scalar(&gray, &cfg, &mut scratch_a, &mut out_a).expect("fast scalar");
        fast::detect_into(&gray, &cfg, &mut scratch_b, &mut out_b).expect("fast swar");
        let identical = out_a == out_b && scratch_b.prereject() > 0;
        rows.push(run_pair(
            "fast_detect",
            o.budget,
            identical,
            || {
                fast::detect_into_scalar(&gray, &cfg, &mut scratch_a, &mut out_a).expect("fast");
            },
            || {
                fast::detect_into(&gray, &cfg, &mut scratch_b, &mut out_b).expect("fast");
            },
        ));
    }

    // warp_affine: rotation — constant divisor, arbitrary blend weights
    // (float path with hoisted row terms).
    // warp_halfpix: dyadic subpixel translation — every weight k/2^15,
    // the i64 fixed-point interpolator path.
    let origin = Vec2::new(-2.0, 1.0);
    for (name, h) in [
        (
            "warp_affine",
            Mat3::translation(10.0, 5.0) * Mat3::rotation(0.1),
        ),
        ("warp_halfpix", Mat3::translation(3.5, -2.25)),
    ] {
        let (mut dst_a, mut mask_a) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        let (mut dst_b, mut mask_b) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
        warp_perspective_offset_into_scalar(&frame, &h, kw, kh, origin, &mut dst_a, &mut mask_a)
            .expect("warp scalar");
        warp_perspective_offset_into(&frame, &h, kw, kh, origin, &mut dst_b, &mut mask_b)
            .expect("warp swar");
        let identical = dst_a == dst_b && mask_a == mask_b;
        rows.push(run_pair(
            name,
            o.budget,
            identical,
            || {
                warp_perspective_offset_into_scalar(
                    &frame,
                    &h,
                    kw,
                    kh,
                    origin,
                    &mut dst_a,
                    &mut mask_a,
                )
                .expect("warp");
            },
            || {
                warp_perspective_offset_into(&frame, &h, kw, kh, origin, &mut dst_b, &mut mask_b)
                    .expect("warp");
            },
        ));
    }

    // hamming: two-nearest scan over random descriptors, bounded
    // early-exit core vs the scalar oracle.
    {
        let mut rng = SplitMix64::new(o.seed ^ 0xD15C);
        let mut gen_descs = |n: usize| -> Vec<Descriptor> {
            (0..n)
                .map(|_| Descriptor(std::array::from_fn(|_| rng.next_u64())))
                .collect()
        };
        let queries = gen_descs(o.queries);
        let train = gen_descs(o.train);
        let mut nearest_a = Vec::new();
        let mut nearest_b = Vec::new();
        two_nearest(&queries, &train, &mut nearest_a, |q, t, b| {
            q.hamming_bounded_scalar(t, b)
        });
        two_nearest(&queries, &train, &mut nearest_b, |q, t, b| {
            q.hamming_bounded(t, b)
        });
        let identical = nearest_a == nearest_b;
        rows.push(run_pair(
            "hamming",
            o.budget,
            identical,
            || {
                two_nearest(&queries, &train, &mut nearest_a, |q, t, b| {
                    q.hamming_bounded_scalar(t, b)
                });
                std::hint::black_box(&nearest_a);
            },
            || {
                two_nearest(&queries, &train, &mut nearest_b, |q, t, b| {
                    q.hamming_bounded(t, b)
                });
                std::hint::black_box(&nearest_b);
            },
        ));
    }

    rows
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _telemetry = vs_telemetry::install(sink);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    vs_telemetry::emit(
        "bench_config",
        &[
            ("bench", Value::Str("kernel_microbench")),
            ("kernel_width", Value::U64(o.kernel_w as u64)),
            ("kernel_height", Value::U64(o.kernel_h as u64)),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads[0] as u64)),
            ("seed", Value::U64(o.seed)),
            ("host_cores", Value::U64(host_cores as u64)),
        ],
    );

    // Kernel rows on a sink-less thread (telemetry timers disabled, no
    // per-call event spam from the instrumented kernels).
    let rows = std::thread::scope(|scope| {
        scope
            .spawn(|| bench_kernels(&o))
            .join()
            .expect("kernel bench thread panicked")
    });
    for r in &rows {
        vs_telemetry::emit(
            "kernel_result",
            &[
                ("kernel", Value::Str(r.name)),
                ("scalar_ns", Value::F64(r.scalar.secs_per_iter * 1e9)),
                ("swar_ns", Value::F64(r.swar.secs_per_iter * 1e9)),
                ("speedup", Value::F64(r.speedup())),
                ("identical", Value::Bool(r.identical)),
                ("steady_allocs", Value::U64(r.steady_allocs)),
            ],
        );
    }

    // End-to-end: the checkpointed GPR campaign at every requested
    // thread count, all counts cross-checked for identical outcomes.
    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    let mut sweep: Vec<(usize, f64, bool)> = Vec::new();
    let mut primary: Option<Vec<campaign::Injection<<VsWorkload as campaign::Workload>::Output>>> =
        None;
    let mut sweep_identical = true;
    for &n in &o.threads {
        let cfg = CampaignConfig::new(RegClass::Gpr, o.injections)
            .seed(o.seed)
            .threads(n)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
        let t0 = Instant::now();
        let results = campaign::run_campaign_checkpointed(&w, &ck, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let same = primary.as_ref().is_none_or(|p: &Vec<_>| {
            p.len() == results.len()
                && p.iter()
                    .zip(&results)
                    .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired)
        });
        sweep_identical &= same;
        vs_telemetry::emit(
            "thread_sweep",
            &[
                ("threads", Value::U64(n as u64)),
                ("on_secs", Value::F64(secs)),
                ("runs_per_sec_on", Value::F64(o.injections as f64 / secs)),
                ("identical", Value::Bool(same)),
                ("oversubscribed", Value::Bool(n > host_cores)),
            ],
        );
        sweep.push((n, secs, same));
        if primary.is_none() {
            primary = Some(results);
        }
    }
    let runs_on = o.injections as f64 / sweep[0].1;

    let kernels_identical = rows.iter().all(|r| r.identical);
    let kernels_alloc_free = rows.iter().all(|r| r.steady_allocs == 0);
    let outcomes_identical = kernels_identical && sweep_identical;
    vs_telemetry::emit(
        "bench_result",
        &[
            ("runs_per_sec_on", Value::F64(runs_on)),
            ("kernels", Value::U64(rows.len() as u64)),
            ("identical", Value::Bool(outcomes_identical)),
        ],
    );

    let kernel_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"swar_ns\": {}, \"scalar_min_ns\": {}, \"swar_min_ns\": {}, \"scalar_mean_ns\": {}, \"swar_mean_ns\": {}, \"batches\": {}, \"speedup\": {}, \"identical\": {}, \"steady_allocs\": {}}}",
                r.name,
                json_f(r.scalar.secs_per_iter * 1e9),
                json_f(r.swar.secs_per_iter * 1e9),
                json_f(r.scalar.min_secs_per_iter * 1e9),
                json_f(r.swar.min_secs_per_iter * 1e9),
                json_f(r.scalar.mean_secs_per_iter * 1e9),
                json_f(r.swar.mean_secs_per_iter * 1e9),
                r.scalar.batches.min(r.swar.batches),
                json_f(r.speedup()),
                r.identical,
                r.steady_allocs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sweep_json = sweep
        .iter()
        .map(|&(n, secs, same)| {
            format!(
                "    {{\"threads\": {n}, \"on_secs\": {}, \"runs_per_sec_on\": {}, \"identical\": {same}, \"oversubscribed\": {}}}",
                json_f(secs),
                json_f(o.injections as f64 / secs),
                n > host_cores
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"kernel_microbench\",\n  \"kernel_frame_size\": [{}, {}],\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections\": {},\n  \"checkpoint_every_k\": {},\n  \"seed\": {},\n  \"host_cores\": {},\n  \"kernels\": [\n{kernel_json}\n  ],\n  \"runs_per_sec_on\": {},\n  \"thread_sweep\": [\n{sweep_json}\n  ],\n  \"outcomes_identical\": {}\n}}\n",
        o.kernel_w,
        o.kernel_h,
        o.frames,
        o.width,
        o.height,
        o.injections,
        o.every_k,
        o.seed,
        host_cores,
        json_f(runs_on),
        outcomes_identical
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("error: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let out_path = o.out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);

    if !kernels_identical {
        eprintln!("error: a SWAR kernel diverged from its scalar oracle");
        return ExitCode::FAILURE;
    }
    if !sweep_identical {
        eprintln!("error: thread sweep diverged from primary campaign outcomes");
        return ExitCode::FAILURE;
    }
    if !kernels_alloc_free {
        eprintln!("error: a warmed kernel path still allocates at steady state");
        return ExitCode::FAILURE;
    }
    if o.check_speedups {
        for r in &rows {
            if r.speedup() < 1.0 {
                eprintln!("error: kernel {} regressed ({:.3}x)", r.name, r.speedup());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
