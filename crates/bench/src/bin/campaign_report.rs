//! Fault-forensics campaign report: runs GPR and FPR campaigns against a
//! forensic golden profile and renders where faults entered the pipeline,
//! how deep they propagated and where they were absorbed.
//!
//! ```text
//! campaign_report [--frames N] [--inj N] [--threads N] [--every-k K]
//!                 [--seed S] [--out-dir DIR] [--trace FILE] [--smoke]
//! ```
//!
//! For each register class the report runs the *same* campaign twice:
//! once from a plain golden profile (forensics off) and once
//! fast-forwarded from a forensic checkpointed golden (forensics on).
//! Both must classify every injection identically — digest recording
//! lives outside the simulated machine, so any divergence is a bug and
//! fails the run. The forensic records then feed:
//!
//! * the stage×outcome propagation matrix (Wilson intervals per row),
//! * the divergence-depth histogram (how many stage digests a fault
//!   corrupted before the output),
//! * the egregiousness-vs-divergence-stage table (§V-D `SdcQuality` of
//!   each retained SDC output, grouped by attributed stage),
//! * register/bit/function coverage histograms.
//!
//! Artifacts land under `--out-dir` (default `out/forensics/`):
//! `report.md`, `propagation.csv` and `report.json`. The binary exits
//! non-zero if the off/on record lists differ, if fewer than 90% of FPR
//! masked runs attribute to the warp/summary stages, or if any GPR
//! non-crash run lands in the `unknown` row — the acceptance gates
//! `scripts/verify.sh` relies on.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use vs_core::quality::{self, SdcQuality};
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, CampaignConfig, CheckpointPolicy, Injection, Outcome};
use vs_fault::forensics::{PropagationMatrix, Stage, NUM_STAGES};
use vs_fault::spec::RegClass;
use vs_fault::stats::{self, OutcomeClass};
use vs_fault::FuncId;
use vs_image::RgbImage;
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};

const USAGE: &str = "usage: campaign_report [--frames N] [--inj N] [--threads N] [--every-k K] [--seed S] [--out-dir DIR] [--trace FILE] [--smoke]";

struct ReportOpts {
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    threads: usize,
    every_k: usize,
    seed: u64,
    out_dir: PathBuf,
    trace: Option<PathBuf>,
}

impl Default for ReportOpts {
    fn default() -> Self {
        ReportOpts {
            frames: 12,
            width: 128,
            height: 96,
            injections: 200,
            threads: vs_bench::host_cores(),
            every_k: 1,
            seed: 0xF0DE,
            out_dir: "out/forensics".into(),
            trace: None,
        }
    }
}

fn parse(args: &[String]) -> Result<ReportOpts, String> {
    let mut o = ReportOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--frames" => o.frames = val("--frames")?.parse().map_err(|_| "bad --frames")?,
            "--inj" => o.injections = val("--inj")?.parse().map_err(|_| "bad --inj")?,
            "--threads" => o.threads = val("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--every-k" => o.every_k = val("--every-k")?.parse().map_err(|_| "bad --every-k")?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--out-dir" => o.out_dir = val("--out-dir")?.into(),
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--smoke" => {
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 60;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        if o.every_k == 0 || o.threads == 0 {
            return Err("--every-k and --threads must be positive".into());
        }
    }
    Ok(o)
}

fn class_name(class: RegClass) -> &'static str {
    match class {
        RegClass::Gpr => "gpr",
        RegClass::Fpr => "fpr",
    }
}

/// SDC quality grouped by attributed stage (the `unknown` bucket last).
struct StageEd {
    stage: &'static str,
    n: usize,
    egregious: usize,
    norm_sum: f64,
    ed_sum: u64,
}

/// Everything the report renders for one register class.
struct ClassReport {
    class: RegClass,
    records: Vec<Injection<Vec<RgbImage>>>,
    matrix: PropagationMatrix,
    /// `depth_hist[d]` = non-crash runs whose trace diverged at `d` stages.
    depth_hist: [usize; NUM_STAGES + 1],
    stage_ed: Vec<StageEd>,
    reg_cv: f64,
    bit_cv: f64,
    func_hist: [u32; vs_fault::NUM_FUNCS],
    identical: bool,
}

fn analyze(
    w: &VsWorkload,
    golden_plain: &campaign::GoldenRun<Vec<RgbImage>>,
    ck: &campaign::CheckpointedGolden<VsWorkload>,
    class: RegClass,
    o: &ReportOpts,
) -> ClassReport {
    let cfg_off = CampaignConfig::new(class, o.injections)
        .seed(o.seed)
        .threads(o.threads);
    let off = campaign::run_campaign(w, golden_plain, &cfg_off);
    let cfg_on = CampaignConfig::new(class, o.injections)
        .seed(o.seed)
        .threads(o.threads)
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
    let on = campaign::run_campaign_checkpointed(w, ck, &cfg_on);
    let identical = off.len() == on.len()
        && off
            .iter()
            .zip(&on)
            .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired);

    let matrix = PropagationMatrix::from_records(&on);
    let mut depth_hist = [0usize; NUM_STAGES + 1];
    for r in &on {
        if let Some(f) = &r.forensics {
            depth_hist[f.attribution.depth as usize] += 1;
        }
    }

    // §V-D quality of every retained SDC output, grouped by the stage
    // the corruption is attributed to.
    let mut stage_ed: Vec<StageEd> = PropagationMatrix::row_names()
        .iter()
        .map(|name| StageEd {
            stage: name,
            n: 0,
            egregious: 0,
            norm_sum: 0.0,
            ed_sum: 0,
        })
        .collect();
    for r in &on {
        let (Outcome::Sdc, Some(out)) = (r.outcome, r.sdc_output.as_ref()) else {
            continue;
        };
        let q: SdcQuality = quality::summary_quality(&ck.golden.output, out);
        let row = vs_fault::forensics::attributed_stage(r.forensics.as_ref(), r.fired)
            .map_or(NUM_STAGES, Stage::index);
        let e = &mut stage_ed[row];
        e.n += 1;
        match q.ed {
            Some(ed) => {
                e.norm_sum += q.relative_l2_norm;
                e.ed_sum += u64::from(ed);
            }
            None => e.egregious += 1,
        }
    }

    let reg_cv = stats::coefficient_of_variation(&stats::register_histogram(&on));
    let bit_cv = stats::coefficient_of_variation(&stats::bit_histogram(&on));
    let func_hist = stats::func_histogram(&on);
    vs_telemetry::emit(
        "forensics_summary",
        &[
            ("class", Value::Str(class_name(class))),
            ("injections", Value::U64(on.len() as u64)),
            ("identical", Value::Bool(identical)),
            (
                "unknown_noncrash",
                Value::U64((matrix.row(None).masked + matrix.row(None).sdc) as u64),
            ),
        ],
    );
    ClassReport {
        class,
        records: on,
        matrix,
        depth_hist,
        stage_ed,
        reg_cv,
        bit_cv,
        func_hist,
        identical,
    }
}

/// Fraction (percent) of a class's masked runs attributed to the warp or
/// summary stage — the FPR acceptance gate (FPR taps concentrate in the
/// per-pixel warp math, so absorbed flips should attribute there).
fn masked_warp_summary_pct(r: &ClassReport) -> f64 {
    let total: usize = r.matrix.rows().iter().map(|c| c.masked).sum();
    let ws = r.matrix.row(Some(Stage::Warp)).masked + r.matrix.row(Some(Stage::Summary)).masked;
    if total == 0 {
        0.0
    } else {
        100.0 * ws as f64 / total as f64
    }
}

fn render_markdown(reports: &[ClassReport], o: &ReportOpts, checkpoints: usize) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Fault-forensics campaign report\n");
    let _ = writeln!(
        md,
        "- input: {} frames at {}×{} (input2 preset), checkpoint interval {} ({} checkpoints)",
        o.frames, o.width, o.height, o.every_k, checkpoints
    );
    let _ = writeln!(
        md,
        "- campaigns: {} injections per class, seed {}, {} threads",
        o.injections, o.seed, o.threads
    );
    let _ = writeln!(
        md,
        "- zero-perturbation check: each campaign ran twice (forensics off/on); record lists must be identical\n"
    );
    for r in reports {
        let rates = stats::outcome_rates(&r.records);
        let _ = writeln!(md, "## {} campaign\n", class_name(r.class).to_uppercase());
        let _ = writeln!(
            md,
            "- outcomes: {rates}\n- forensics off/on record lists identical: **{}**\n",
            r.identical
        );
        let _ = writeln!(md, "### Propagation matrix (attributed stage × outcome)\n");
        let _ = writeln!(
            md,
            "| stage | n | masked | sdc | crash | hang | masked % [95% CI] | sdc % [95% CI] |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
        for (name, row) in PropagationMatrix::row_names().iter().zip(r.matrix.rows()) {
            if row.n() == 0 {
                continue;
            }
            let rr = row.rates();
            let (mlo, mhi) = rr.wilson_interval(OutcomeClass::Masked);
            let (slo, shi) = rr.wilson_interval(OutcomeClass::Sdc);
            let _ = writeln!(
                md,
                "| {name} | {} | {} | {} | {} | {} | {:.1} [{:.1}, {:.1}] | {:.1} [{:.1}, {:.1}] |",
                row.n(),
                row.masked,
                row.sdc,
                row.crash_segfault + row.crash_abort,
                row.hang,
                rr.masked,
                mlo,
                mhi,
                rr.sdc,
                slo,
                shi
            );
        }
        let _ = writeln!(
            md,
            "\n### Divergence depth (stages corrupted per non-crash run)\n"
        );
        let _ = writeln!(md, "| depth | runs |");
        let _ = writeln!(md, "|---|---|");
        for (d, n) in r.depth_hist.iter().enumerate() {
            if *n > 0 {
                let _ = writeln!(md, "| {d} | {n} |");
            }
        }
        let _ = writeln!(md, "\n### SDC egregiousness by divergence stage (§V-D)\n");
        let _ = writeln!(md, "| stage | sdcs | egregious | mean rel-L2 % | mean ED |");
        let _ = writeln!(md, "|---|---|---|---|---|");
        for e in &r.stage_ed {
            if e.n == 0 {
                continue;
            }
            let graded = e.n - e.egregious;
            let (norm, ed) = if graded == 0 {
                ("—".to_string(), "—".to_string())
            } else {
                (
                    format!("{:.2}", e.norm_sum / graded as f64),
                    format!("{:.1}", e.ed_sum as f64 / graded as f64),
                )
            };
            let _ = writeln!(
                md,
                "| {} | {} | {} | {norm} | {ed} |",
                e.stage, e.n, e.egregious
            );
        }
        let _ = writeln!(
            md,
            "\n### Coverage\n\n- register histogram CV: {:.3}\n- bit histogram CV: {:.3}",
            r.reg_cv, r.bit_cv
        );
        let fired: Vec<String> = FuncId::ALL
            .iter()
            .filter(|f| r.func_hist[f.index()] > 0)
            .map(|f| format!("{}: {}", f.name(), r.func_hist[f.index()]))
            .collect();
        let _ = writeln!(md, "- fired-fault functions: {}\n", fired.join(", "));
        if r.class == RegClass::Fpr {
            let _ = writeln!(
                md,
                "- masked runs attributed to warp/summary: {:.1}% (gate: ≥ 90%)\n",
                masked_warp_summary_pct(r)
            );
        }
    }
    md.push_str(
        "Attribution: a run's `first_divergence` stage when its digest trace \
         diverged from golden, else the fired fault's stage. Masked runs whose \
         trace never diverged were absorbed before the next stage boundary.\n",
    );
    md
}

fn render_csv(reports: &[ClassReport]) -> String {
    let mut csv = String::from(
        "class,stage,n,masked,sdc,crash_segfault,crash_abort,hang,masked_pct,masked_lo,masked_hi,sdc_pct,sdc_lo,sdc_hi\n",
    );
    for r in reports {
        for (name, row) in PropagationMatrix::row_names().iter().zip(r.matrix.rows()) {
            let rr = row.rates();
            let (mlo, mhi) = rr.wilson_interval(OutcomeClass::Masked);
            let (slo, shi) = rr.wilson_interval(OutcomeClass::Sdc);
            let _ = writeln!(
                csv,
                "{},{name},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                class_name(r.class),
                row.n(),
                row.masked,
                row.sdc,
                row.crash_segfault,
                row.crash_abort,
                row.hang,
                rr.masked,
                mlo,
                mhi,
                rr.sdc,
                slo,
                shi
            );
        }
    }
    csv
}

fn render_json(reports: &[ClassReport], o: &ReportOpts, checkpoints: usize) -> String {
    let class_json: Vec<String> = reports
        .iter()
        .map(|r| {
            let rows: Vec<String> = PropagationMatrix::row_names()
                .iter()
                .zip(r.matrix.rows())
                .map(|(name, row)| {
                    format!(
                        "        {{\"stage\": \"{name}\", \"masked\": {}, \"sdc\": {}, \"crash_segfault\": {}, \"crash_abort\": {}, \"hang\": {}}}",
                        row.masked, row.sdc, row.crash_segfault, row.crash_abort, row.hang
                    )
                })
                .collect();
            let depth: Vec<String> = r.depth_hist.iter().map(usize::to_string).collect();
            let eds: Vec<String> = r
                .stage_ed
                .iter()
                .filter(|e| e.n > 0)
                .map(|e| {
                    let graded = e.n - e.egregious;
                    format!(
                        "        {{\"stage\": \"{}\", \"sdcs\": {}, \"egregious\": {}, \"mean_rel_l2\": {:.6}}}",
                        e.stage,
                        e.n,
                        e.egregious,
                        if graded == 0 { 0.0 } else { e.norm_sum / graded as f64 }
                    )
                })
                .collect();
            format!
                (
                "    {{\n      \"class\": \"{}\",\n      \"identical_off_on\": {},\n      \"masked_warp_summary_pct\": {:.4},\n      \"register_cv\": {:.6},\n      \"bit_cv\": {:.6},\n      \"propagation\": [\n{}\n      ],\n      \"depth_hist\": [{}],\n      \"sdc_quality_by_stage\": [\n{}\n      ]\n    }}",
                class_name(r.class),
                r.identical,
                masked_warp_summary_pct(r),
                r.reg_cv,
                r.bit_cv,
                rows.join(",\n"),
                depth.join(", "),
                eds.join(",\n")
            )
        })
        .collect();
    format!(
        "{{\n  \"report\": \"fault_forensics\",\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections_per_class\": {},\n  \"seed\": {},\n  \"checkpoint_every_k\": {},\n  \"checkpoints\": {},\n  \"classes\": [\n{}\n  ]\n}}\n",
        o.frames,
        o.width,
        o.height,
        o.injections,
        o.seed,
        o.every_k,
        checkpoints,
        class_json.join(",\n")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    vs_telemetry::set_trace_seed(o.seed);
    let _telemetry = vs_telemetry::install(sink);
    vs_telemetry::emit(
        "report_config",
        &[
            ("report", Value::Str("fault_forensics")),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads as u64)),
            ("every_k", Value::U64(o.every_k as u64)),
            ("seed", Value::U64(o.seed)),
        ],
    );

    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());
    // One plain golden (drives the forensics-off control campaigns) and
    // one forensic checkpointed golden (drives the forensics-on runs).
    let golden_plain = campaign::profile_golden(&w).expect("golden run failed");
    let ck = campaign::profile_golden_checkpointed_forensic(
        &w,
        CheckpointPolicy::EveryKFrames(o.every_k),
    )
    .expect("forensic golden run failed");

    let reports: Vec<ClassReport> = [RegClass::Gpr, RegClass::Fpr]
        .iter()
        .map(|&class| analyze(&w, &golden_plain, &ck, class, &o))
        .collect();

    if let Err(e) = std::fs::create_dir_all(&o.out_dir) {
        eprintln!("error: cannot create {}: {e}", o.out_dir.display());
        return ExitCode::FAILURE;
    }
    let artifacts = [
        (
            "report.md",
            render_markdown(&reports, &o, ck.checkpoints.len()),
        ),
        ("propagation.csv", render_csv(&reports)),
        (
            "report.json",
            render_json(&reports, &o, ck.checkpoints.len()),
        ),
    ];
    for (name, contents) in &artifacts {
        let path = o.out_dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let shown = path.display().to_string();
        vs_telemetry::emit("artifact", &[("path", Value::Str(&shown))]);
    }
    let mut manifest = vs_bench::manifest::Manifest::new("campaign_report")
        .u64(
            "config_digest",
            vs_bench::manifest::config_digest(&[
                o.frames as u64,
                o.width as u64,
                o.height as u64,
                o.injections as u64,
                o.every_k as u64,
                o.seed,
            ]),
        )
        .u64("injections", o.injections as u64)
        .u64("threads", o.threads as u64)
        .u64("seed", o.seed)
        .bool("identical", reports.iter().all(|r| r.identical));
    for r in &reports {
        let prefix = format!("{}_", class_name(r.class));
        manifest = manifest.rates_prefixed(&prefix, &stats::outcome_rates(&r.records));
    }
    manifest.append_default();

    // Acceptance gates (see module docs).
    let mut failed = false;
    for r in &reports {
        if !r.identical {
            eprintln!(
                "error: {} campaign records differ between forensics off and on",
                class_name(r.class)
            );
            failed = true;
        }
    }
    if let Some(gpr) = reports.iter().find(|r| r.class == RegClass::Gpr) {
        let unknown = gpr.matrix.row(None);
        if unknown.masked + unknown.sdc > 0 {
            eprintln!(
                "error: {} GPR non-crash runs have no stage attribution",
                unknown.masked + unknown.sdc
            );
            failed = true;
        }
    }
    if let Some(fpr) = reports.iter().find(|r| r.class == RegClass::Fpr) {
        let pct = masked_warp_summary_pct(fpr);
        if pct < 90.0 {
            eprintln!(
                "error: only {pct:.1}% of FPR masked runs attribute to warp/summary (gate: 90%)"
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "forensics report written to {} (gpr + fpr, {} injections each)",
        o.out_dir.display(),
        o.injections
    );
    ExitCode::SUCCESS
}
