//! Cross-process SIMD dispatch smoke: the record stream of a fault
//! campaign must not depend on which kernel implementation the runtime
//! dispatcher picked.
//!
//! Runs one plain (off-session) pipeline pass plus a small GPR and a
//! small FPR campaign on the standard `VsWorkload`, and prints one
//! digest line per phase to stdout. The dispatch level and detected
//! CPU features go to stderr only. `scripts/verify.sh` executes this
//! binary under `VS_SIMD=scalar`, `VS_SIMD=swar` and `VS_SIMD=auto`
//! and diffs the stdout — any divergence means a vector kernel leaked
//! a bit somewhere (into the output pixels, the tap stream, or an
//! injection outcome).
//!
//! `std::hash::DefaultHasher` is deterministic across processes (SipHash
//! with fixed keys), so the digests are directly comparable.
//!
//! `--trace FILE` streams the span-instrumented JSONL event trace to
//! FILE. The trace sink is file-only — never stdout — because the
//! digest lines are the contract this binary is diffed on.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::process::ExitCode;
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, CampaignConfig, Workload};
use vs_fault::spec::RegClass;
use vs_video::{render_input, InputSpec};

const USAGE: &str = "usage: simd_check [--trace FILE]";

fn main() -> ExitCode {
    let mut trace: Option<std::path::PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(v) => trace = Some(v.into()),
                None => {
                    eprintln!("error: --trace needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let _telemetry = match &trace {
        Some(path) => match vs_bench::trace::build_jsonl_sink(path) {
            Ok(sink) => {
                vs_telemetry::set_trace_seed(0x51D0);
                Some(vs_telemetry::install(sink))
            }
            Err(e) => {
                eprintln!("error: cannot create trace file: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    eprintln!(
        "simd_check: level {} (detected: {})",
        vs_image::dispatch::level().as_str(),
        vs_image::dispatch::detected_features()
    );
    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(6)
            .with_frame_size(96, 72),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());

    // Plain run: the panorama pixels themselves.
    let panoramas = match w.run() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: plain run failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let mut h = DefaultHasher::new();
    panoramas.len().hash(&mut h);
    for img in &panoramas {
        (img.width(), img.height()).hash(&mut h);
        img.as_bytes().hash(&mut h);
    }
    println!("plain {:016x}", h.finish());

    // Injection campaigns: every record (spec, landing site, outcome,
    // any retained SDC output) folded into one digest per class.
    let golden = match campaign::profile_golden(&w) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: golden profile failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    for class in [RegClass::Gpr, RegClass::Fpr] {
        let cfg = CampaignConfig::new(class, 32).seed(0x51D0);
        let records = campaign::run_campaign(&w, &golden, &cfg);
        let mut h = DefaultHasher::new();
        records.len().hash(&mut h);
        for r in &records {
            r.index.hash(&mut h);
            format!("{:?}", r.spec).hash(&mut h);
            format!("{:?}", r.fired).hash(&mut h);
            r.outcome.name().hash(&mut h);
            if let Some(out) = &r.sdc_output {
                for img in out {
                    (img.width(), img.height()).hash(&mut h);
                    img.as_bytes().hash(&mut h);
                }
            }
        }
        println!("{class} {:016x}", h.finish());
    }
    ExitCode::SUCCESS
}
