//! Validate a JSONL telemetry trace written with `--trace`.
//!
//! ```text
//! trace_check FILE [--expect NAME=COUNT]... [--require NAME]...
//!             [--scratch-steady] [--kernels] [--forensics] [--quiet]
//! ```
//!
//! Every line must parse against the trace schema (flat JSON object,
//! first key `"event"`); `--expect` pins the exact count of an event
//! name, `--require` just demands at least one. `--scratch-steady`
//! validates the zero-allocation steady state from the trace alone: the
//! last `scratch_reuse` counter (one per pipeline run, emitted by the
//! run workspace) must report `grown=0` — every buffer group reused,
//! none regrown. `--kernels` validates the per-kernel instrumentation:
//! every `warp` and `match` event must carry an `ns` timer, every `orb`
//! event the `fast_prereject`/`fast_ns`/`blur_ns` counters, and at
//! least one traced detection must have exercised the SWAR pre-reject
//! (`fast_prereject > 0`). `--metrics` validates the scaling-report
//! metrics snapshots: at least one `metrics_phase` event, each carrying
//! the full quantile schema (`count`/`sum_ns`/`mean_ns`/`p50_ns`/
//! `p90_ns`/`p99_ns`/`max_ns` as u64) with monotone quantiles
//! (p50 <= p90 <= p99 <= max), every `metrics_counter` carrying a u64
//! `value`, and at least one `metrics_coverage` event whose `coverage`
//! lies in [0, 1]. `--forensics` validates the fault-forensics
//! digest events: at least one `forensics_golden` carrying a digest per
//! pipeline stage, at least one `injection` with an `attr_stage`
//! attribution field, and every SDC injection carrying attribution
//! fields must be stage-resolved (`attr_stage != "unknown"`, `depth >=
//! 1`). `--spans` validates the span-tree schema: every `span_enter`
//! carries a non-zero unique `span_id` whose `parent_id` is the
//! enclosing open span of the same thread, spans are well-nested per
//! thread with monotone timestamps, and every in-span event's `span_id`
//! points at its open enclosing span. `--export-chrome FILE` converts
//! the trace to Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`), `--export-flame FILE` to a collapsed-stack
//! flame summary (one `stack self_ns` line per span path). Prints a
//! per-event census and exits non-zero on any violation — the trace
//! smoke gate in `scripts/verify.sh`.

use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_check FILE [--expect NAME=COUNT]... [--require NAME]... [--scratch-steady] [--kernels] [--metrics] [--forensics] [--spans] [--export-chrome FILE] [--export-flame FILE] [--quiet]";

struct CheckOpts {
    file: std::path::PathBuf,
    expect: Vec<(String, usize)>,
    require: Vec<String>,
    scratch_steady: bool,
    kernels: bool,
    metrics: bool,
    forensics: bool,
    spans: bool,
    export_chrome: Option<std::path::PathBuf>,
    export_flame: Option<std::path::PathBuf>,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<CheckOpts, String> {
    let mut file = None;
    let mut expect = Vec::new();
    let mut require = Vec::new();
    let mut scratch_steady = false;
    let mut kernels = false;
    let mut metrics = false;
    let mut forensics = false;
    let mut spans = false;
    let mut export_chrome = None;
    let mut export_flame = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect" => {
                let v = it.next().ok_or("--expect needs NAME=COUNT")?;
                let (name, count) = v.split_once('=').ok_or("--expect needs NAME=COUNT")?;
                let count = count
                    .parse()
                    .map_err(|_| format!("bad --expect count '{count}'"))?;
                expect.push((name.to_string(), count));
            }
            "--require" => {
                require.push(it.next().ok_or("--require needs NAME")?.clone());
            }
            "--scratch-steady" => scratch_steady = true,
            "--kernels" => kernels = true,
            "--metrics" => metrics = true,
            "--forensics" => forensics = true,
            "--spans" => spans = true,
            "--export-chrome" => {
                export_chrome = Some(it.next().ok_or("--export-chrome needs FILE")?.into());
            }
            "--export-flame" => {
                export_flame = Some(it.next().ok_or("--export-flame needs FILE")?.into());
            }
            "--quiet" => quiet = true,
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.into());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(CheckOpts {
        file: file.ok_or("no trace file given")?,
        expect,
        require,
        scratch_steady,
        kernels,
        metrics,
        forensics,
        spans,
        export_chrome,
        export_flame,
        quiet,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&o.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", o.file.display());
            return ExitCode::FAILURE;
        }
    };
    let events = match vs_telemetry::jsonl::parse_trace(&text) {
        Ok(ev) => ev,
        Err((line, e)) => {
            eprintln!("error: {}:{line}: {e}", o.file.display());
            return ExitCode::FAILURE;
        }
    };

    let mut census: BTreeMap<&str, usize> = BTreeMap::new();
    for ev in &events {
        *census.entry(&ev.name).or_default() += 1;
    }
    if !o.quiet {
        println!(
            "# trace_check {}: {} events",
            o.file.display(),
            events.len()
        );
        for (name, count) in &census {
            println!("# {name} {count}");
        }
    }

    let mut failed = false;
    for (name, want) in &o.expect {
        let got = census.get(name.as_str()).copied().unwrap_or(0);
        if got != *want {
            eprintln!("error: expected {want} '{name}' events, found {got}");
            failed = true;
        }
    }
    for name in &o.require {
        if !census.contains_key(name.as_str()) {
            eprintln!("error: required event '{name}' missing from trace");
            failed = true;
        }
    }
    if o.scratch_steady {
        match events.iter().rev().find(|e| e.name == "scratch_reuse") {
            None => {
                eprintln!("error: --scratch-steady: no scratch_reuse events in trace");
                failed = true;
            }
            Some(ev) => match ev.u64("grown") {
                Some(0) => {}
                Some(g) => {
                    eprintln!(
                        "error: --scratch-steady: last scratch_reuse still grew {g} buffer group(s)"
                    );
                    failed = true;
                }
                None => {
                    eprintln!("error: --scratch-steady: scratch_reuse event lacks 'grown' field");
                    failed = true;
                }
            },
        }
    }
    if o.kernels {
        // Per-kernel instrumentation: timer and counter fields the
        // SWAR/fixed-point pass added to the hot-kernel events.
        let field_checks: &[(&str, &[&str])] = &[
            ("warp", &["ns"]),
            ("match", &["ns"]),
            ("orb", &["fast_prereject", "fast_ns", "blur_ns"]),
        ];
        for &(name, fields) in field_checks {
            for ev in events.iter().filter(|e| e.name == name) {
                for field in fields {
                    if ev.u64(field).is_none() {
                        eprintln!("error: --kernels: '{name}' event lacks u64 field '{field}'");
                        failed = true;
                    }
                }
            }
        }
        let prerejects = events
            .iter()
            .filter(|e| e.name == "orb")
            .filter_map(|e| e.u64("fast_prereject"));
        if prerejects.clone().count() > 0 && prerejects.sum::<u64>() == 0 {
            eprintln!("error: --kernels: no traced detection exercised the SWAR pre-reject");
            failed = true;
        }
    }
    if o.metrics {
        // Metrics snapshots from a metrics-armed campaign (the
        // scaling_report binary): phase histograms with a complete,
        // monotone quantile schema, plus attribution coverage.
        let phases: Vec<_> = events
            .iter()
            .filter(|e| e.name == "metrics_phase")
            .collect();
        if phases.is_empty() {
            eprintln!("error: --metrics: no metrics_phase event in trace");
            failed = true;
        }
        for ev in &phases {
            if ev.str("phase").is_none() {
                eprintln!("error: --metrics: metrics_phase lacks str field 'phase'");
                failed = true;
                continue;
            }
            let name = ev.str("phase").unwrap_or("?");
            let fields = [
                "count", "sum_ns", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns",
            ];
            let mut complete = true;
            for field in fields {
                if ev.u64(field).is_none() {
                    eprintln!("error: --metrics: metrics_phase '{name}' lacks u64 field '{field}'");
                    failed = true;
                    complete = false;
                }
            }
            if complete {
                let q = |f: &str| ev.u64(f).unwrap_or(0);
                if !(q("p50_ns") <= q("p90_ns")
                    && q("p90_ns") <= q("p99_ns")
                    && q("p99_ns") <= q("max_ns"))
                {
                    eprintln!("error: --metrics: metrics_phase '{name}' quantiles not monotone");
                    failed = true;
                }
                if q("count") == 0 {
                    eprintln!("error: --metrics: metrics_phase '{name}' with zero samples");
                    failed = true;
                }
            }
        }
        for ev in events.iter().filter(|e| e.name == "metrics_counter") {
            if ev.str("counter").is_none() || ev.u64("value").is_none() {
                eprintln!("error: --metrics: metrics_counter lacks 'counter'/'value' fields");
                failed = true;
            }
        }
        let coverages: Vec<_> = events
            .iter()
            .filter(|e| e.name == "metrics_coverage")
            .collect();
        if coverages.is_empty() {
            eprintln!("error: --metrics: no metrics_coverage event in trace");
            failed = true;
        }
        for ev in &coverages {
            match ev.f64("coverage") {
                Some(c) if (0.0..=1.0).contains(&c) => {}
                Some(c) => {
                    eprintln!("error: --metrics: coverage {c} outside [0, 1]");
                    failed = true;
                }
                None => {
                    eprintln!("error: --metrics: metrics_coverage lacks f64 field 'coverage'");
                    failed = true;
                }
            }
        }
    }
    if o.forensics {
        // Fault-forensics digest events from a forensic campaign run.
        let stages = [
            "decode", "pyramid", "fast", "orb", "match", "ransac", "warp", "summary",
        ];
        let goldens: Vec<_> = events
            .iter()
            .filter(|e| e.name == "forensics_golden")
            .collect();
        if goldens.is_empty() {
            eprintln!("error: --forensics: no forensics_golden event in trace");
            failed = true;
        }
        for ev in &goldens {
            for stage in stages {
                if ev.u64(stage).is_none() {
                    eprintln!(
                        "error: --forensics: forensics_golden lacks u64 digest field '{stage}'"
                    );
                    failed = true;
                }
            }
        }
        let mut attributed = 0usize;
        for ev in events.iter().filter(|e| e.name == "injection") {
            // Only injections from forensic campaigns carry attribution
            // fields; control campaigns (forensics off) interleave in
            // the same trace.
            let Some(attr) = ev.str("attr_stage") else {
                continue;
            };
            attributed += 1;
            if !stages.contains(&attr) && attr != "unknown" {
                eprintln!("error: --forensics: unknown attr_stage '{attr}'");
                failed = true;
            }
            if ev.str("outcome") == Some("sdc") {
                if attr == "unknown" {
                    eprintln!("error: --forensics: sdc injection with unresolved attr_stage");
                    failed = true;
                }
                match ev.u64("depth") {
                    Some(d) if d >= 1 => {}
                    _ => {
                        eprintln!(
                            "error: --forensics: sdc injection without divergence depth >= 1"
                        );
                        failed = true;
                    }
                }
            }
        }
        if attributed == 0 {
            eprintln!("error: --forensics: no injection event carries attr_stage");
            failed = true;
        }
    }
    if o.spans {
        match vs_telemetry::export::validate_spans(&events) {
            Ok(stats) => {
                if stats.spans == 0 {
                    eprintln!("error: --spans: no span_enter events in trace");
                    failed = true;
                } else if !o.quiet {
                    println!(
                        "# spans {} (max depth {}, {} thread(s), {} in-span events)",
                        stats.spans, stats.max_depth, stats.threads, stats.events_in_spans
                    );
                }
            }
            Err(e) => {
                eprintln!("error: --spans: {e}");
                failed = true;
            }
        }
    }
    for (path, body, kind) in [
        (
            &o.export_chrome,
            o.export_chrome
                .as_ref()
                .map(|_| vs_telemetry::export::chrome_trace(&events)),
            "chrome trace",
        ),
        (
            &o.export_flame,
            o.export_flame
                .as_ref()
                .map(|_| vs_telemetry::export::flame_summary(&events)),
            "flame summary",
        ),
    ] {
        let (Some(path), Some(body)) = (path, body) else {
            continue;
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {kind} to {}: {e}", path.display());
            failed = true;
        } else if !o.quiet {
            println!("# {kind} written to {}", path.display());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
