//! Cross-run regression sentinel over the persistent run ledger and
//! the committed `BENCH_*.json` trajectory.
//!
//! ```text
//! obs_report [--ledger DIR] [--bench-dir DIR] [--out-dir DIR]
//!            [--threshold-pct P] [--widen-pp W] [--quiet]
//! ```
//!
//! Every bench binary appends one `run_manifest` line per run to the
//! ledger (`out/ledger/ledger.jsonl`, see `vs_telemetry::ledger`).
//! This binary groups those manifests into comparable series — same
//! tool, config digest, `VS_SIMD` level, host cores and thread count —
//! and compares each series' latest run against the median of its
//! earlier runs:
//!
//! * **Throughput regressions.** A throughput metric (`runs_per_sec_*`,
//!   `speedup`, ...) is flagged when the latest run drops below the
//!   baseline median by more than a CV-aware threshold:
//!   `max(--threshold-pct, 2 sigma of the baseline's own run-to-run
//!   spread)` — the same coefficient-of-variation definition
//!   `Measurement::cv` uses for batch noise, so a historically noisy
//!   series needs a proportionally bigger drop to alarm.
//! * **Outcome-rate drift.** Every rate field carrying Wilson bounds
//!   (`rate_sdc` with `rate_sdc_lo`/`rate_sdc_hi`, any prefix) is
//!   compared interval-against-interval with the previous run; both
//!   intervals are widened by `--widen-pp` percentage points and the
//!   field is flagged only when they fail to overlap — a statistically
//!   resolvable shift in campaign outcomes, not sampling noise.
//!
//! The committed `BENCH_*.json` files get the same treatment as a
//! second, coarser trajectory: files are grouped by their `bench` name
//! (matching host shape only), ordered by file name, and the latest
//! file's headline metrics are compared against the median of its
//! predecessors.
//!
//! Writes `obs_report.md` and `obs_report.json` under `--out-dir`
//! (default `out/observatory`). Exit code: 0 clean, 2 when any
//! regression is flagged, 1 on unreadable inputs — `scripts/verify.sh
//! --full` runs this as an advisory gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vs_bench::json::Json;
use vs_bench::timing::cv_of;
use vs_telemetry::ledger::Ledger;
use vs_telemetry::{OwnedEvent, OwnedValue};

const USAGE: &str = "usage: obs_report [--ledger DIR] [--bench-dir DIR] [--out-dir DIR] [--threshold-pct P] [--widen-pp W] [--quiet]";

/// Headline higher-is-better metrics compared across runs.
const THROUGHPUT_KEYS: &[&str] = &[
    "runs_per_sec_on",
    "runs_per_sec_off",
    "runs_per_sec",
    "fixed_runs_per_sec",
    "speedup",
    "speedup_after",
    "kernel_speedup_min",
    "injection_reduction",
];

struct Opts {
    ledger_dir: PathBuf,
    bench_dir: PathBuf,
    out_dir: PathBuf,
    threshold_pct: f64,
    widen_pp: f64,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        ledger_dir: match std::env::var("VS_LEDGER_DIR") {
            Ok(dir) if !dir.is_empty() => dir.into(),
            _ => "out/ledger".into(),
        },
        bench_dir: ".".into(),
        out_dir: "out/observatory".into(),
        threshold_pct: 10.0,
        widen_pp: 1.0,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--ledger" => o.ledger_dir = val("--ledger")?.into(),
            "--bench-dir" => o.bench_dir = val("--bench-dir")?.into(),
            "--out-dir" => o.out_dir = val("--out-dir")?.into(),
            "--threshold-pct" => {
                let v = val("--threshold-pct")?;
                o.threshold_pct = v
                    .parse()
                    .map_err(|_| format!("bad --threshold-pct '{v}'"))?;
            }
            "--widen-pp" => {
                let v = val("--widen-pp")?;
                o.widen_pp = v.parse().map_err(|_| format!("bad --widen-pp '{v}'"))?;
            }
            "--quiet" => o.quiet = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(o)
}

/// One flagged regression.
#[derive(Debug, Clone, PartialEq)]
struct Finding {
    /// Comparable-series key (or BENCH group name).
    group: String,
    /// Metric or rate-field name.
    metric: String,
    /// Baseline value (median of earlier runs; rate midpoint for drift).
    baseline: f64,
    /// Latest run's value.
    latest: f64,
    /// Threshold the comparison used (percent drop, or widening in pp).
    threshold: f64,
    /// `"throughput"` or `"rate_drift"`.
    kind: &'static str,
}

/// One comparable series' comparison summary (for the report even when
/// nothing is flagged).
struct GroupSummary {
    group: String,
    runs: usize,
    compared: usize,
    flagged: usize,
}

fn f64_field(ev: &OwnedEvent, key: &str) -> Option<f64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            OwnedValue::F64(x) => Some(*x),
            OwnedValue::U64(x) => Some(*x as f64),
            OwnedValue::I64(x) => Some(*x as f64),
            _ => None,
        })
}

fn display_field(ev: &OwnedEvent, key: &str) -> String {
    match ev.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        Some(OwnedValue::Str(s)) => s.clone(),
        Some(OwnedValue::U64(x)) => x.to_string(),
        Some(OwnedValue::I64(x)) => x.to_string(),
        Some(OwnedValue::F64(x)) => format!("{x}"),
        Some(OwnedValue::Bool(b)) => b.to_string(),
        Some(OwnedValue::Null) | None => "?".into(),
    }
}

/// Comparable-series key of a manifest: tool + config digest + SIMD
/// level + host shape. Runs in the same series measured the same thing
/// on the same kind of machine.
fn group_key(ev: &OwnedEvent) -> String {
    format!(
        "{}/cfg={}/simd={}/cores={}/threads={}",
        display_field(ev, "tool"),
        display_field(ev, "config_digest"),
        display_field(ev, "simd"),
        display_field(ev, "host_cores"),
        display_field(ev, "threads"),
    )
}

/// Median of an unsorted non-empty sample.
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Compare `latest` against `priors` for one higher-is-better metric.
/// Returns the finding if the drop exceeds the CV-aware threshold.
fn throughput_finding(
    group: &str,
    metric: &str,
    priors: &[f64],
    latest: f64,
    threshold_pct: f64,
) -> Option<Finding> {
    let baseline = median(priors);
    if baseline <= 0.0 || !baseline.is_finite() || !latest.is_finite() {
        return None;
    }
    // Two sigmas of the baseline's own run-to-run spread, floored by
    // the static threshold: noisy series need bigger drops to alarm.
    let threshold = threshold_pct.max(200.0 * cv_of(priors));
    let drop_pct = (1.0 - latest / baseline) * 100.0;
    (drop_pct > threshold).then(|| Finding {
        group: group.to_string(),
        metric: metric.to_string(),
        baseline,
        latest,
        threshold,
        kind: "throughput",
    })
}

/// Rate fields of a manifest that carry Wilson bounds: every key `k`
/// with `k_lo` and `k_hi` siblings.
fn rate_keys(ev: &OwnedEvent) -> Vec<String> {
    ev.fields
        .iter()
        .filter(|(k, _)| !k.ends_with("_lo") && !k.ends_with("_hi"))
        .filter(|(k, _)| {
            f64_field(ev, &format!("{k}_lo")).is_some()
                && f64_field(ev, &format!("{k}_hi")).is_some()
        })
        .map(|(k, _)| k.clone())
        .collect()
}

/// Compare one rate field's Wilson interval between two runs; flag only
/// when the intervals, widened by `widen_pp` on each side, fail to
/// overlap.
fn drift_finding(
    group: &str,
    key: &str,
    prev: &OwnedEvent,
    latest: &OwnedEvent,
    widen_pp: f64,
) -> Option<Finding> {
    let (p_lo, p_hi) = (
        f64_field(prev, &format!("{key}_lo"))?,
        f64_field(prev, &format!("{key}_hi"))?,
    );
    let (l_lo, l_hi) = (
        f64_field(latest, &format!("{key}_lo"))?,
        f64_field(latest, &format!("{key}_hi"))?,
    );
    let disjoint = l_lo - widen_pp > p_hi + widen_pp || l_hi + widen_pp < p_lo - widen_pp;
    disjoint.then(|| Finding {
        group: group.to_string(),
        metric: key.to_string(),
        baseline: f64_field(prev, key).unwrap_or((p_lo + p_hi) / 2.0),
        latest: f64_field(latest, key).unwrap_or((l_lo + l_hi) / 2.0),
        threshold: widen_pp,
        kind: "rate_drift",
    })
}

/// Analyze the whole ledger: group manifests into comparable series and
/// compare each series' latest run against its history.
fn analyze_ledger(
    entries: &[OwnedEvent],
    threshold_pct: f64,
    widen_pp: f64,
) -> (Vec<GroupSummary>, Vec<Finding>) {
    let mut groups: BTreeMap<String, Vec<&OwnedEvent>> = BTreeMap::new();
    for ev in entries {
        groups.entry(group_key(ev)).or_default().push(ev);
    }
    let mut summaries = Vec::new();
    let mut findings = Vec::new();
    for (group, mut runs) in groups {
        // Append order is already chronological; unix_ms refines it
        // when ledgers are concatenated.
        runs.sort_by_key(|ev| f64_field(ev, "unix_ms").unwrap_or(0.0) as u64);
        let mut compared = 0usize;
        let mut flagged = 0usize;
        if let Some((latest, priors)) = runs.split_last() {
            if !priors.is_empty() {
                for metric in THROUGHPUT_KEYS {
                    let Some(l) = f64_field(latest, metric) else {
                        continue;
                    };
                    let history: Vec<f64> =
                        priors.iter().filter_map(|p| f64_field(p, metric)).collect();
                    if history.is_empty() {
                        continue;
                    }
                    compared += 1;
                    if let Some(f) = throughput_finding(&group, metric, &history, l, threshold_pct)
                    {
                        flagged += 1;
                        findings.push(f);
                    }
                }
                let prev = priors.last().expect("non-empty priors");
                for key in rate_keys(latest) {
                    if f64_field(prev, &key).is_none() {
                        continue;
                    }
                    compared += 1;
                    if let Some(f) = drift_finding(&group, &key, prev, latest, widen_pp) {
                        flagged += 1;
                        findings.push(f);
                    }
                }
            }
        }
        summaries.push(GroupSummary {
            group,
            runs: runs.len(),
            compared,
            flagged,
        });
    }
    (summaries, findings)
}

/// Analyze the committed `BENCH_*.json` trajectory: group by `bench`
/// name and host shape, order by file name, compare the latest file's
/// headline metrics against the median of its predecessors.
fn analyze_bench_files(
    files: &[(String, Json)],
    threshold_pct: f64,
) -> (Vec<GroupSummary>, Vec<Finding>) {
    let mut groups: BTreeMap<String, Vec<&(String, Json)>> = BTreeMap::new();
    for entry in files {
        let bench = entry.1.get("bench").and_then(Json::as_str).unwrap_or("?");
        let cores = entry
            .1
            .get("host_cores")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        groups
            .entry(format!("BENCH:{bench}/cores={cores}"))
            .or_default()
            .push(entry);
    }
    let mut summaries = Vec::new();
    let mut findings = Vec::new();
    for (group, mut members) in groups {
        members.sort_by(|a, b| a.0.cmp(&b.0));
        let mut compared = 0usize;
        let mut flagged = 0usize;
        if let Some(((_, latest), priors)) = members.split_last() {
            if !priors.is_empty() {
                for metric in THROUGHPUT_KEYS {
                    let Some(l) = latest.get(metric).and_then(Json::as_f64) else {
                        continue;
                    };
                    let history: Vec<f64> = priors
                        .iter()
                        .filter_map(|(_, j)| j.get(metric).and_then(Json::as_f64))
                        .collect();
                    if history.is_empty() {
                        continue;
                    }
                    compared += 1;
                    if let Some(f) = throughput_finding(&group, metric, &history, l, threshold_pct)
                    {
                        flagged += 1;
                        findings.push(f);
                    }
                }
            }
        }
        summaries.push(GroupSummary {
            group,
            runs: members.len(),
            compared,
            flagged,
        });
    }
    (summaries, findings)
}

/// Load every `BENCH_*.json` in `dir`, name-sorted.
fn load_bench_files(dir: &Path) -> Result<Vec<(String, Json)>, String> {
    let mut files = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(files),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", entry.path().display()))?;
        files.push((name, json));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn render_markdown(
    summaries: &[GroupSummary],
    findings: &[Finding],
    ledger_path: &Path,
    bench_count: usize,
) -> String {
    let mut md = String::from("# Observability report: cross-run regression sentinel\n\n");
    md.push_str(&format!(
        "Ledger: `{}`. BENCH trajectory files: {bench_count}.\n\n## Verdict\n\n",
        ledger_path.display()
    ));
    if findings.is_empty() {
        md.push_str("No regressions flagged.\n\n");
    } else {
        md.push_str(&format!(
            "**{} regression(s) flagged.**\n\n",
            findings.len()
        ));
        md.push_str("| group | metric | kind | baseline | latest | threshold |\n|---|---|---|---:|---:|---:|\n");
        for f in findings {
            md.push_str(&format!(
                "| {} | {} | {} | {:.4} | {:.4} | {:.2}{} |\n",
                f.group,
                f.metric,
                f.kind,
                f.baseline,
                f.latest,
                f.threshold,
                if f.kind == "throughput" { "%" } else { "pp" },
            ));
        }
        md.push('\n');
    }
    md.push_str("## Series\n\n| series | runs | comparisons | flagged |\n|---|---:|---:|---:|\n");
    for s in summaries {
        md.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            s.group, s.runs, s.compared, s.flagged
        ));
    }
    md
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn render_json(summaries: &[GroupSummary], findings: &[Finding]) -> String {
    let findings_json = findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"group\": \"{}\", \"metric\": \"{}\", \"kind\": \"{}\", \"baseline\": {}, \"latest\": {}, \"threshold\": {}}}",
                f.group,
                f.metric,
                f.kind,
                json_f(f.baseline),
                json_f(f.latest),
                json_f(f.threshold)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let series_json = summaries
        .iter()
        .map(|s| {
            format!(
                "    {{\"series\": \"{}\", \"runs\": {}, \"comparisons\": {}, \"flagged\": {}}}",
                s.group, s.runs, s.compared, s.flagged
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"report\": \"obs_report\",\n  \"regressions\": {},\n  \"findings\": [\n{findings_json}\n  ],\n  \"series\": [\n{series_json}\n  ]\n}}\n",
        findings.len()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let ledger = Ledger::in_dir(&o.ledger_dir);
    let entries = match ledger.read() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read ledger {}: {e}", ledger.path().display());
            return ExitCode::FAILURE;
        }
    };
    let bench_files = match load_bench_files(&o.bench_dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (mut summaries, mut findings) = analyze_ledger(&entries, o.threshold_pct, o.widen_pp);
    let (bench_summaries, bench_findings) = analyze_bench_files(&bench_files, o.threshold_pct);
    summaries.extend(bench_summaries);
    findings.extend(bench_findings);
    // Most interesting first: biggest relative drop.
    findings.sort_by(|a, b| {
        let drop = |f: &Finding| (f.baseline - f.latest) / f.baseline.abs().max(1e-12);
        drop(b).total_cmp(&drop(a))
    });

    let md = render_markdown(&summaries, &findings, ledger.path(), bench_files.len());
    let json = render_json(&summaries, &findings);
    if let Err(e) = std::fs::create_dir_all(&o.out_dir) {
        eprintln!("error: cannot create {}: {e}", o.out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, body) in [("obs_report.md", &md), ("obs_report.json", &json)] {
        let path = o.out_dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if !o.quiet {
        print!("{md}");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Distinct from hard errors (1): regressions flagged.
        ExitCode::from(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_telemetry::ledger;

    /// A synthetic campaign_bench manifest.
    fn manifest(unix_ms: u64, runs_per_sec: f64, sdc: (f64, f64, f64)) -> OwnedEvent {
        let (rate, lo, hi) = sdc;
        ledger::manifest(vec![
            ("tool".into(), OwnedValue::Str("campaign_bench".into())),
            ("unix_ms".into(), OwnedValue::U64(unix_ms)),
            ("simd".into(), OwnedValue::Str("swar".into())),
            ("host_cores".into(), OwnedValue::U64(4)),
            ("threads".into(), OwnedValue::U64(4)),
            ("config_digest".into(), OwnedValue::U64(0xD16E57)),
            ("runs_per_sec_on".into(), OwnedValue::F64(runs_per_sec)),
            ("rate_sdc".into(), OwnedValue::F64(rate)),
            ("rate_sdc_lo".into(), OwnedValue::F64(lo)),
            ("rate_sdc_hi".into(), OwnedValue::F64(hi)),
        ])
    }

    /// Same manifest in a different comparable series (other digest).
    fn manifest_in_series(unix_ms: u64, runs_per_sec: f64, digest: u64) -> OwnedEvent {
        let mut m = manifest(unix_ms, runs_per_sec, (5.0, 3.0, 8.0));
        if let Some((_, v)) = m.fields.iter_mut().find(|(k, _)| k == "config_digest") {
            *v = OwnedValue::U64(digest);
        }
        m
    }

    #[test]
    fn flags_exactly_the_degraded_run() {
        // Two series: one stable, one with a 40% throughput collapse in
        // its latest entry. Exactly the degraded series is flagged.
        let entries = vec![
            manifest(1_000, 100.0, (5.0, 3.0, 8.0)),
            manifest(2_000, 101.0, (5.0, 3.0, 8.0)),
            manifest_in_series(1_500, 100.0, 0xBADD16),
            manifest_in_series(2_500, 60.0, 0xBADD16),
        ];
        let (summaries, findings) = analyze_ledger(&entries, 10.0, 1.0);
        assert_eq!(summaries.len(), 2);
        assert_eq!(findings.len(), 1, "exactly the degraded run is flagged");
        assert!(
            findings[0].group.contains("cfg=12246294"),
            "0xBADD16 series"
        );
        assert_eq!(findings[0].metric, "runs_per_sec_on");
        assert_eq!(findings[0].kind, "throughput");
        assert_eq!(findings[0].latest, 60.0);
    }

    #[test]
    fn noisy_series_need_bigger_drops() {
        // Baseline spread (CV) ~20%: a 25% drop stays under the 2-sigma
        // threshold; the same drop on a tight baseline alarms.
        let noisy: Vec<f64> = vec![80.0, 100.0, 120.0];
        assert!(throughput_finding("g", "m", &noisy, 75.0, 10.0).is_none());
        let tight: Vec<f64> = vec![99.0, 100.0, 101.0];
        assert!(throughput_finding("g", "m", &tight, 75.0, 10.0).is_some());
    }

    #[test]
    fn rate_drift_uses_widened_wilson_intervals() {
        let a = manifest(1_000, 100.0, (5.0, 3.0, 8.0));
        // Overlaps once widened by 1pp: no flag.
        let b = manifest(2_000, 100.0, (10.0, 8.5, 13.0));
        let (_, findings) = analyze_ledger(&[a.clone(), b], 10.0, 1.0);
        assert!(findings.is_empty(), "widened intervals overlap");
        // Far outside even after widening: flagged as drift.
        let c = manifest(2_000, 100.0, (20.0, 16.0, 25.0));
        let (_, findings) = analyze_ledger(&[a, c], 10.0, 1.0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "rate_drift");
        assert_eq!(findings[0].metric, "rate_sdc");
    }

    #[test]
    fn single_run_series_compare_nothing() {
        let (summaries, findings) =
            analyze_ledger(&[manifest(1_000, 100.0, (5.0, 3.0, 8.0))], 10.0, 1.0);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].compared, 0);
        assert!(findings.is_empty());
    }

    #[test]
    fn bench_trajectory_flags_latest_file_regression() {
        let old = Json::parse(
            r#"{"bench": "campaign_throughput", "host_cores": 1, "runs_per_sec_on": 100.0}"#,
        )
        .unwrap();
        let new = Json::parse(
            r#"{"bench": "campaign_throughput", "host_cores": 1, "runs_per_sec_on": 50.0}"#,
        )
        .unwrap();
        let files = vec![("BENCH_1.json".into(), old), ("BENCH_2.json".into(), new)];
        let (_, findings) = analyze_bench_files(&files, 10.0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "runs_per_sec_on");
        // Different host shapes never compare.
        let a =
            Json::parse(r#"{"bench": "x", "host_cores": 1, "runs_per_sec_on": 100.0}"#).unwrap();
        let b = Json::parse(r#"{"bench": "x", "host_cores": 8, "runs_per_sec_on": 10.0}"#).unwrap();
        let (_, findings) = analyze_bench_files(
            &[("BENCH_1.json".into(), a), ("BENCH_2.json".into(), b)],
            10.0,
        );
        assert!(findings.is_empty());
    }
}
