//! Campaign-throughput benchmark: measures how much golden-prefix
//! fast-forwarding (checkpointed fault campaigns) speeds up injection
//! throughput, and emits the result as `BENCH_1.json`.
//!
//! ```text
//! campaign_bench [--frames N] [--inj N] [--threads N] [--every-k K]
//!                [--seed S] [--out FILE] [--trace FILE] [--smoke]
//! ```
//!
//! The benchmark profiles one golden run (plain and checkpoint-capturing),
//! then runs the same GPR campaign twice — every injection re-executed
//! from scratch, and every injection fast-forwarded from the latest
//! usable checkpoint — and cross-checks that both campaigns classify
//! every injection identically before reporting runs/sec. `--smoke`
//! shrinks everything so the whole benchmark finishes in seconds (used
//! by `scripts/verify.sh` as an offline end-to-end gate).
//!
//! All progress output flows through the `vs-telemetry` sink layer:
//! human-readable lines on stdout, plus a complete JSONL trace (stage
//! counters, per-injection outcomes, live campaign snapshots) when
//! `--trace` is given. Validate traces with the `trace_check` binary.

use std::process::ExitCode;
use std::time::Instant;
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::campaign::{self, CampaignConfig, CheckpointPolicy};
use vs_fault::spec::RegClass;
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};

const USAGE: &str = "usage: campaign_bench [--frames N] [--inj N] [--threads N] [--every-k K] [--seed S] [--out FILE] [--trace FILE] [--smoke]";

struct BenchOpts {
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    threads: usize,
    every_k: usize,
    seed: u64,
    out: std::path::PathBuf,
    trace: Option<std::path::PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            frames: 16,
            width: 128,
            height: 96,
            injections: 120,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            every_k: 1,
            seed: 0xBE6C,
            out: "BENCH_1.json".into(),
            trace: None,
        }
    }
}

fn parse(args: &[String]) -> Result<BenchOpts, String> {
    let mut o = BenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--frames" => o.frames = val("--frames")?.parse().map_err(|_| "bad --frames")?,
            "--inj" => o.injections = val("--inj")?.parse().map_err(|_| "bad --inj")?,
            "--threads" => o.threads = val("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--every-k" => o.every_k = val("--every-k")?.parse().map_err(|_| "bad --every-k")?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--out" => o.out = val("--out")?.into(),
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--smoke" => {
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 24;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        if o.threads == 0 || o.every_k == 0 {
            return Err("--threads and --every-k must be positive".into());
        }
    }
    Ok(o)
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _telemetry = vs_telemetry::install(sink);
    vs_telemetry::emit(
        "bench_config",
        &[
            ("bench", Value::Str("campaign_throughput")),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads as u64)),
            ("every_k", Value::U64(o.every_k as u64)),
            ("seed", Value::U64(o.seed)),
        ],
    );

    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let w = VsWorkload::new(frames, PipelineConfig::default());

    // Golden runs: plain (what scratch campaigns need) and capturing
    // (what checkpointed campaigns need).
    let t0 = Instant::now();
    let golden = campaign::profile_golden(&w).expect("golden run failed");
    let golden_run_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    let golden_capturing_secs = t0.elapsed().as_secs_f64();
    vs_telemetry::emit(
        "golden_profiled",
        &[
            ("plain_secs", Value::F64(golden_run_secs)),
            ("capturing_secs", Value::F64(golden_capturing_secs)),
            ("checkpoints", Value::U64(ck.checkpoints.len() as u64)),
        ],
    );

    // The same campaign, from scratch and fast-forwarded.
    let cfg_off = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(o.threads);
    let t0 = Instant::now();
    let scratch = campaign::run_campaign(&w, &golden, &cfg_off);
    let campaign_off_secs = t0.elapsed().as_secs_f64();

    let cfg_on = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(o.threads)
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
    let t0 = Instant::now();
    let fast = campaign::run_campaign_checkpointed(&w, &ck, &cfg_on);
    let campaign_on_secs = t0.elapsed().as_secs_f64();

    let identical = scratch.len() == fast.len()
        && scratch
            .iter()
            .zip(&fast)
            .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired);
    let runs_off = o.injections as f64 / campaign_off_secs;
    let runs_on = o.injections as f64 / campaign_on_secs;
    let speedup = campaign_off_secs / campaign_on_secs;
    vs_telemetry::emit(
        "bench_result",
        &[
            ("off_secs", Value::F64(campaign_off_secs)),
            ("runs_per_sec_off", Value::F64(runs_off)),
            ("on_secs", Value::F64(campaign_on_secs)),
            ("runs_per_sec_on", Value::F64(runs_on)),
            ("speedup", Value::F64(speedup)),
            ("identical", Value::Bool(identical)),
        ],
    );

    let json = format!(
        "{{\n  \"bench\": \"campaign_throughput\",\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections\": {},\n  \"threads\": {},\n  \"checkpoint_every_k\": {},\n  \"checkpoints\": {},\n  \"golden_run_secs\": {},\n  \"golden_capturing_secs\": {},\n  \"campaign_checkpoint_off_secs\": {},\n  \"campaign_checkpoint_on_secs\": {},\n  \"runs_per_sec_off\": {},\n  \"runs_per_sec_on\": {},\n  \"speedup\": {},\n  \"outcomes_identical\": {}\n}}\n",
        o.frames,
        o.width,
        o.height,
        o.injections,
        o.threads,
        o.every_k,
        ck.checkpoints.len(),
        json_f(golden_run_secs),
        json_f(golden_capturing_secs),
        json_f(campaign_off_secs),
        json_f(campaign_on_secs),
        json_f(runs_off),
        json_f(runs_on),
        json_f(speedup),
        identical
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("error: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let out_path = o.out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);
    if !identical {
        eprintln!("error: checkpointed campaign diverged from scratch campaign");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
