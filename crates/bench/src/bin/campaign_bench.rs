//! Campaign-throughput benchmark: measures how much golden-prefix
//! fast-forwarding plus per-worker workspace reuse (checkpointed fault
//! campaigns) speeds up injection throughput, counts the workload's
//! steady-state heap allocations, and emits the result as `BENCH_2.json`.
//!
//! ```text
//! campaign_bench [--frames N] [--inj N] [--threads N[,N...]] [--every-k K]
//!                [--seed S] [--out FILE] [--trace FILE] [--smoke]
//!                [--adaptive] [--adaptive-out FILE] [--epsilon PP]
//!                [--cache FILE] [--rate-agreement] [--min-reduction X]
//! ```
//!
//! `--threads` accepts a comma list (`--threads 1,2,4`): the first count
//! drives the off/on comparison, and every further count re-runs the
//! checkpointed campaign as a scaling sweep whose outcome records must
//! be identical to the first run's (thread-striping is index-
//! deterministic, so any divergence is a bug). The sweep lands in the
//! JSON as `thread_sweep` rows, each annotated with whether it
//! oversubscribes the recorded `host_cores`.
//!
//! `--adaptive` switches to the adaptive-campaign benchmark (emitted as
//! `BENCH_4.json`): one fixed-budget reference campaign, the
//! Wilson-gated adaptive campaign at the same seed, and a cold/warm
//! compositional pass against a (optionally persistent, `--cache`)
//! group-measurement cache. `--rate-agreement` gates every estimate's
//! per-class rates against the reference campaign's 95% Wilson interval
//! widened by the adaptive epsilon; `--min-reduction X` additionally
//! requires the adaptive campaign to stop early with at least an `X`-fold
//! injection reduction.
//!
//! The benchmark profiles one golden run (plain and checkpoint-capturing),
//! then runs the same GPR campaign twice — every injection re-executed
//! from scratch, and every injection fast-forwarded from the latest
//! usable checkpoint into a reused workspace — and cross-checks that both
//! campaigns classify every injection identically before reporting
//! runs/sec. A counting global allocator (this binary only) measures the
//! workspace path: the first run on a cold workspace allocates
//! (`allocs_per_run_scratch`), warmed-up runs must not allocate at all
//! (`allocs_per_run_steady`, gated to 0). `--smoke` shrinks everything so
//! the whole benchmark finishes in seconds (used by `scripts/verify.sh`
//! as an offline end-to-end gate).
//!
//! All progress output flows through the `vs-telemetry` sink layer:
//! human-readable lines on stdout, plus a complete JSONL trace (stage
//! counters, per-injection outcomes, live campaign snapshots, per-run
//! `scratch_reuse` counters) when `--trace` is given. Validate traces
//! with the `trace_check` binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use vs_core::workloads::VsWorkload;
use vs_core::PipelineConfig;
use vs_fault::adaptive::{self, AdaptiveConfig};
use vs_fault::campaign::{self, CampaignConfig, CheckpointPolicy, ScratchWorkload};
use vs_fault::compose::{self, CampaignCache, ComposeConfig};
use vs_fault::spec::RegClass;
use vs_fault::stats::{outcome_rates, OutcomeClass, OutcomeRates};
use vs_telemetry::Value;
use vs_video::{render_input, InputSpec};

/// Process-wide allocation counter: every `alloc`/`realloc`/
/// `alloc_zeroed` bumps it. Bench binary only — the library crates stay
/// on the system allocator. Measurement windows run on an otherwise
/// quiescent process, so deltas attribute cleanly to the code under
/// test.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Allocation counts of the workspace path: first run on a cold
/// workspace, and the per-run average over a warmed-up workspace (which
/// the zero-allocation steady-state invariant pins to exactly 0).
struct AllocStats {
    per_run_scratch: u64,
    per_run_steady: f64,
}

/// Measure workload allocations on a dedicated thread: the telemetry
/// sink is thread-local (no sink → `emit` is a no-op) and the main
/// thread blocks in `join`, so the global counter's delta is exactly the
/// workload's.
fn measure_allocs(w: &VsWorkload) -> AllocStats {
    const WARMUP_RUNS: usize = 3;
    const STEADY_RUNS: u64 = 8;
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let mut scratch = w.make_scratch();
                let a0 = alloc_calls();
                w.run_scratch(&mut scratch).expect("golden run failed");
                let per_run_scratch = alloc_calls() - a0;
                // Swap-paired buffers (current/previous features, RANSAC
                // inlier lists) reach their high-water marks only once
                // each buffer has served every role: warm up past that.
                for _ in 0..WARMUP_RUNS {
                    w.run_scratch(&mut scratch).expect("golden run failed");
                }
                let a1 = alloc_calls();
                for _ in 0..STEADY_RUNS {
                    w.run_scratch(&mut scratch).expect("golden run failed");
                }
                AllocStats {
                    per_run_scratch,
                    per_run_steady: (alloc_calls() - a1) as f64 / STEADY_RUNS as f64,
                }
            })
            .join()
            .expect("alloc measurement thread panicked")
    })
}

const USAGE: &str = "usage: campaign_bench [--frames N] [--inj N] [--threads N[,N...]] [--every-k K] [--seed S] [--out FILE] [--trace FILE] [--smoke] [--adaptive] [--adaptive-out FILE] [--epsilon PP] [--cache FILE] [--rate-agreement] [--min-reduction X]";

struct BenchOpts {
    frames: usize,
    width: usize,
    height: usize,
    injections: usize,
    /// Thread counts to bench: the first is the primary off/on
    /// comparison, the rest are scaling-sweep reruns.
    threads: Vec<usize>,
    every_k: usize,
    seed: u64,
    out: std::path::PathBuf,
    trace: Option<std::path::PathBuf>,
    /// Run the adaptive-campaign benchmark instead of the throughput
    /// benchmark.
    adaptive: bool,
    /// Output path of the adaptive benchmark JSON.
    adaptive_out: std::path::PathBuf,
    /// Adaptive Wilson half-width target, percentage points. `None`
    /// picks a scale-appropriate default (8pp full, 30pp smoke).
    epsilon: Option<f64>,
    /// Persistent compositional cache path (loaded before the cold
    /// pass, saved after the warm pass).
    cache: Option<std::path::PathBuf>,
    /// Fail unless every estimate passes the per-class agreement gate.
    rate_agreement: bool,
    /// Fail unless the adaptive campaign converges with at least this
    /// injection reduction (0 disables the gate).
    min_reduction: f64,
    /// Whether `--smoke` was given (picks smoke-scale adaptive/compose
    /// parameters).
    smoke: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            frames: 16,
            width: 128,
            height: 96,
            injections: 120,
            threads: vec![vs_bench::host_cores()],
            every_k: 1,
            seed: 0xBE6C,
            out: "BENCH_2.json".into(),
            trace: None,
            adaptive: false,
            adaptive_out: "BENCH_4.json".into(),
            epsilon: None,
            cache: None,
            rate_agreement: false,
            min_reduction: 0.0,
            smoke: false,
        }
    }
}

/// Parse a `--threads` comma list: non-empty, every count positive.
fn parse_threads(v: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|s| s.trim().parse::<usize>().map_err(|_| "bad --threads"))
        .collect::<Result<_, _>>()?;
    if list.is_empty() || list.contains(&0) {
        return Err("--threads needs positive counts".into());
    }
    Ok(list)
}

fn parse(args: &[String]) -> Result<BenchOpts, String> {
    let mut o = BenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--frames" => o.frames = val("--frames")?.parse().map_err(|_| "bad --frames")?,
            "--inj" => o.injections = val("--inj")?.parse().map_err(|_| "bad --inj")?,
            "--threads" => o.threads = parse_threads(&val("--threads")?)?,
            "--every-k" => o.every_k = val("--every-k")?.parse().map_err(|_| "bad --every-k")?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--out" => o.out = val("--out")?.into(),
            "--trace" => o.trace = Some(val("--trace")?.into()),
            "--adaptive" => o.adaptive = true,
            "--adaptive-out" => o.adaptive_out = val("--adaptive-out")?.into(),
            "--epsilon" => {
                o.epsilon = Some(val("--epsilon")?.parse().map_err(|_| "bad --epsilon")?)
            }
            "--cache" => o.cache = Some(val("--cache")?.into()),
            "--rate-agreement" => o.rate_agreement = true,
            "--min-reduction" => {
                o.min_reduction = val("--min-reduction")?
                    .parse()
                    .map_err(|_| "bad --min-reduction")?
            }
            "--smoke" => {
                o.frames = 6;
                o.width = 80;
                o.height = 60;
                o.injections = 24;
                o.smoke = true;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        if o.every_k == 0 {
            return Err("--every-k must be positive".into());
        }
    }
    Ok(o)
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

/// One outcome class of an estimate checked against the reference
/// campaign's widened 95% Wilson interval.
struct AgreementRow {
    class: &'static str,
    reference: f64,
    estimate: f64,
    lo: f64,
    hi: f64,
    pass: bool,
}

/// Check every outcome class of `estimate` against `reference`'s 95%
/// Wilson interval widened by `widen_pp` percentage points. The
/// widening is the resolution the adaptive stopping rule was asked for
/// (`epsilon_pp`): a passing estimate equals the reference within the
/// confidence that was actually purchased, which is the meaning of
/// "fewer injections at equal confidence".
fn agreement(
    estimate: &OutcomeRates,
    reference: &OutcomeRates,
    widen_pp: f64,
) -> Vec<AgreementRow> {
    OutcomeClass::ALL
        .iter()
        .map(|&c| {
            let (lo, hi) = reference.wilson_interval(c);
            let r = estimate.rate(c);
            AgreementRow {
                class: c.name(),
                reference: reference.rate(c),
                estimate: r,
                lo,
                hi,
                pass: r >= lo - widen_pp && r <= hi + widen_pp,
            }
        })
        .collect()
}

fn agreement_json(rows: &[AgreementRow], widen_pp: f64) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "    {{\"class\": \"{}\", \"reference\": {}, \"estimate\": {}, \"lo\": {}, \"hi\": {}, \"widen_pp\": {}, \"pass\": {}}}",
                r.class,
                json_f(r.reference),
                json_f(r.estimate),
                json_f(r.lo),
                json_f(r.hi),
                json_f(widen_pp),
                r.pass
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn rates_json(r: &OutcomeRates) -> String {
    format!(
        "{{\"n\": {}, \"masked\": {}, \"sdc\": {}, \"crash\": {}, \"hang\": {}}}",
        r.n,
        json_f(r.masked),
        json_f(r.sdc),
        json_f(r.crash),
        json_f(r.hang)
    )
}

/// The adaptive-campaign benchmark (`--adaptive`): one fixed-budget
/// reference campaign, the Wilson-gated adaptive campaign at the same
/// seed (whose records are a prefix of the reference's), and a
/// cold+warm compositional pass against the group-measurement cache.
/// Emits the BENCH_4 JSON and applies the warm-reuse, rate-agreement
/// and injection-reduction gates.
fn run_adaptive_bench(
    o: &BenchOpts,
    w: &VsWorkload,
    host_cores: usize,
    pipeline_digest: u64,
) -> Result<(), String> {
    let epsilon_pp = o.epsilon.unwrap_or(if o.smoke { 30.0 } else { 8.0 });
    let acfg = AdaptiveConfig {
        epsilon_pp,
        batch: if o.smoke { 8 } else { 25 },
        min_injections: if o.smoke { 16 } else { 100 },
        knee_tol_pp: epsilon_pp / 2.0,
    };
    let threads = o.threads[0];
    // Compose pilots run from scratch (no checkpoint fast-forward), so
    // the smoke preset stops each group at a couple of pilots; the full
    // preset resolves each group to 12pp before the weighted merge.
    let ccfg = if o.smoke {
        ComposeConfig {
            seed: o.seed ^ 0xC05E,
            epsilon_pp: 100.0,
            batch: 4,
            min_pilots: 2,
            max_pilots: 4,
            hang_factor: 16,
            threads,
        }
    } else {
        ComposeConfig {
            seed: o.seed ^ 0xC05E,
            epsilon_pp: 12.0,
            batch: 8,
            min_pilots: 8,
            max_pilots: 24,
            hang_factor: 16,
            threads,
        }
    };

    let golden = campaign::profile_golden_checkpointed_forensic(
        w,
        CheckpointPolicy::EveryKFrames(o.every_k),
    )
    .map_err(|e| format!("forensic golden run failed: {e:?}"))?;

    let cfg = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(threads)
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));

    let t0 = Instant::now();
    let fixed = campaign::run_campaign_checkpointed(w, &golden, &cfg);
    let fixed_secs = t0.elapsed().as_secs_f64();
    let fixed_rates = outcome_rates(&fixed);

    let t0 = Instant::now();
    let adapted = adaptive::run_adaptive_checkpointed(w, &golden, &cfg, &acfg);
    let adaptive_secs = t0.elapsed().as_secs_f64();
    let reduction = fixed.len() as f64 / adapted.records.len().max(1) as f64;

    let mut cache = match &o.cache {
        Some(p) => CampaignCache::load(p)?,
        None => CampaignCache::new(),
    };
    let t0 = Instant::now();
    let cold = compose::run_composed_campaign(w, &golden.golden, &ccfg, &mut cache);
    let cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = compose::run_composed_campaign(w, &golden.golden, &ccfg, &mut cache);
    let warm_secs = t0.elapsed().as_secs_f64();
    if let Some(p) = &o.cache {
        cache.workload_digest = pipeline_digest;
        cache
            .save(p)
            .map_err(|e| format!("write {}: {e}", p.display()))?;
    }
    let cold_groups_injected = cold.groups.len() - cold.reused_groups;
    let warm_groups_injected = warm.groups.len() - warm.reused_groups;

    let a_rows = agreement(&adapted.rates, &fixed_rates, epsilon_pp);
    let c_rows = agreement(&cold.estimate, &fixed_rates, ccfg.epsilon_pp);
    let agreement_ok = a_rows.iter().chain(&c_rows).all(|r| r.pass);

    println!(
        "fixed     {:>5} injections in {:>6.2}s",
        fixed.len(),
        fixed_secs
    );
    println!(
        "adaptive  {:>5} injections in {:>6.2}s   {:.1}x fewer, converged={}, half-width {:.2}pp (target {:.0}pp)",
        adapted.records.len(),
        adaptive_secs,
        reduction,
        adapted.converged,
        adaptive::max_half_width(&adapted.rates),
        epsilon_pp
    );
    println!(
        "composed  {:>5} injections in {:>6.2}s cold ({}/{} groups injected); warm: {} injections, {} groups",
        cold.injections_executed,
        cold_secs,
        cold_groups_injected,
        cold.groups.len(),
        warm.injections_executed,
        warm_groups_injected
    );
    println!(
        "rate agreement: {}",
        if agreement_ok { "pass" } else { "FAIL" }
    );
    vs_telemetry::emit(
        "adaptive_bench",
        &[
            ("fixed_injections", Value::U64(fixed.len() as u64)),
            (
                "adaptive_injections",
                Value::U64(adapted.records.len() as u64),
            ),
            ("reduction", Value::F64(reduction)),
            (
                "cold_groups_injected",
                Value::U64(cold_groups_injected as u64),
            ),
            (
                "warm_groups_injected",
                Value::U64(warm_groups_injected as u64),
            ),
            ("agreement", Value::Bool(agreement_ok)),
        ],
    );

    let json = format!(
        "{{\n  \"bench\": \"adaptive_campaign\",\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"threads\": {},\n  \"host_cores\": {},\n  \"seed\": {},\n  \"config_digest\": {},\n  \"compose_digest\": {},\n  \"epsilon_pp\": {},\n  \"fixed_injections\": {},\n  \"fixed_secs\": {},\n  \"adaptive_injections\": {},\n  \"adaptive_secs\": {},\n  \"adaptive_stopped_early\": {},\n  \"adaptive_max_half_width_pp\": {},\n  \"injection_reduction\": {},\n  \"composed_groups\": {},\n  \"cold_groups_injected\": {},\n  \"cold_injections\": {},\n  \"cold_secs\": {},\n  \"warm_groups_injected\": {},\n  \"warm_injections\": {},\n  \"warm_secs\": {},\n  \"rates\": {{\n    \"fixed\": {},\n    \"adaptive\": {},\n    \"composed\": {}\n  }},\n  \"adaptive_agreement\": [\n{}\n  ],\n  \"composed_agreement\": [\n{}\n  ],\n  \"rate_agreement\": {}\n}}\n",
        o.frames,
        o.width,
        o.height,
        threads,
        host_cores,
        o.seed,
        pipeline_digest,
        ccfg.digest(),
        json_f(epsilon_pp),
        fixed.len(),
        json_f(fixed_secs),
        adapted.records.len(),
        json_f(adaptive_secs),
        adapted.converged,
        json_f(adaptive::max_half_width(&adapted.rates)),
        json_f(reduction),
        cold.groups.len(),
        cold_groups_injected,
        cold.injections_executed,
        json_f(cold_secs),
        warm_groups_injected,
        warm.injections_executed,
        json_f(warm_secs),
        rates_json(&fixed_rates),
        rates_json(&adapted.rates),
        rates_json(&cold.estimate),
        agreement_json(&a_rows, epsilon_pp),
        agreement_json(&c_rows, ccfg.epsilon_pp),
        agreement_ok
    );
    std::fs::write(&o.adaptive_out, &json)
        .map_err(|e| format!("cannot write {}: {e}", o.adaptive_out.display()))?;
    let out_path = o.adaptive_out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);
    vs_bench::manifest::Manifest::new("adaptive_bench")
        .u64(
            "config_digest",
            vs_bench::manifest::config_digest(&[
                o.frames as u64,
                o.width as u64,
                o.height as u64,
                o.injections as u64,
                o.every_k as u64,
                o.seed,
                pipeline_digest,
            ]),
        )
        .u64("pipeline_digest", pipeline_digest)
        .u64("injections", o.injections as u64)
        .u64("threads", threads as u64)
        .u64("seed", o.seed)
        .f64("injection_reduction", reduction)
        .f64(
            "fixed_runs_per_sec",
            fixed.len() as f64 / fixed_secs.max(1e-9),
        )
        .bool("identical", agreement_ok)
        .rates(&fixed_rates)
        .append_default();

    if warm_groups_injected != 0 {
        return Err(format!(
            "warm compositional pass re-injected {warm_groups_injected} groups"
        ));
    }
    if o.rate_agreement && !agreement_ok {
        return Err("an estimate left the reference campaign's widened Wilson interval".into());
    }
    if o.min_reduction > 0.0 {
        if !adapted.converged {
            return Err(format!(
                "adaptive campaign failed to converge within {} injections",
                o.injections
            ));
        }
        if reduction < o.min_reduction {
            return Err(format!(
                "injection reduction {reduction:.2}x below the {}x gate",
                o.min_reduction
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(o.trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    vs_telemetry::set_trace_seed(o.seed);
    let _telemetry = vs_telemetry::install(sink);
    let host_cores = vs_bench::host_cores();
    vs_telemetry::emit(
        "bench_config",
        &[
            (
                "bench",
                Value::Str(if o.adaptive {
                    "adaptive_campaign"
                } else {
                    "campaign_throughput"
                }),
            ),
            ("frames", Value::U64(o.frames as u64)),
            ("width", Value::U64(o.width as u64)),
            ("height", Value::U64(o.height as u64)),
            ("injections", Value::U64(o.injections as u64)),
            ("threads", Value::U64(o.threads[0] as u64)),
            ("thread_sweep", Value::U64(o.threads.len() as u64)),
            ("every_k", Value::U64(o.every_k as u64)),
            ("seed", Value::U64(o.seed)),
            ("host_cores", Value::U64(host_cores as u64)),
        ],
    );

    let frames = render_input(
        &InputSpec::input2_preset()
            .with_frames(o.frames)
            .with_frame_size(o.width, o.height),
    );
    let pipeline = PipelineConfig::default();
    let pipeline_digest = pipeline.digest();
    let w = VsWorkload::new(frames, pipeline);

    if o.adaptive {
        return match run_adaptive_bench(&o, &w, host_cores, pipeline_digest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Steady-state allocation count of the workspace path (quiet
    // thread), then a short traced demo on this thread so the JSONL
    // trace carries per-run `scratch_reuse` counters reaching grown=0.
    let allocs = measure_allocs(&w);
    vs_telemetry::emit(
        "bench_alloc",
        &[
            ("allocs_per_run_scratch", Value::U64(allocs.per_run_scratch)),
            ("allocs_per_run_steady", Value::F64(allocs.per_run_steady)),
        ],
    );

    // Golden runs: plain (what scratch campaigns need) and capturing
    // (what checkpointed campaigns need).
    let t0 = Instant::now();
    let golden = campaign::profile_golden(&w).expect("golden run failed");
    let golden_run_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(o.every_k))
        .expect("capturing golden run failed");
    let golden_capturing_secs = t0.elapsed().as_secs_f64();
    vs_telemetry::emit(
        "golden_profiled",
        &[
            ("plain_secs", Value::F64(golden_run_secs)),
            ("capturing_secs", Value::F64(golden_capturing_secs)),
            ("checkpoints", Value::U64(ck.checkpoints.len() as u64)),
        ],
    );

    // The same campaign, from scratch and fast-forwarded.
    let primary_threads = o.threads[0];
    let cfg_off = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(primary_threads);
    let t0 = Instant::now();
    let scratch = campaign::run_campaign(&w, &golden, &cfg_off);
    let campaign_off_secs = t0.elapsed().as_secs_f64();

    let cfg_on = CampaignConfig::new(RegClass::Gpr, o.injections)
        .seed(o.seed)
        .threads(primary_threads)
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
    let t0 = Instant::now();
    let fast = campaign::run_campaign_checkpointed(&w, &ck, &cfg_on);
    let campaign_on_secs = t0.elapsed().as_secs_f64();

    // Scaling sweep: rerun the checkpointed campaign at every further
    // thread count. Thread-striping only partitions injection indices,
    // so every rerun must classify every injection exactly like the
    // primary run — a divergence means a cross-thread determinism bug.
    let mut sweep_rows = vec![(primary_threads, campaign_on_secs, true)];
    let mut sweep_identical = true;
    for &n in &o.threads[1..] {
        let cfg = CampaignConfig::new(RegClass::Gpr, o.injections)
            .seed(o.seed)
            .threads(n)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(o.every_k));
        let t0 = Instant::now();
        let rerun = campaign::run_campaign_checkpointed(&w, &ck, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let same = rerun.len() == fast.len()
            && rerun
                .iter()
                .zip(&fast)
                .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired);
        sweep_identical &= same;
        vs_telemetry::emit(
            "thread_sweep",
            &[
                ("threads", Value::U64(n as u64)),
                ("on_secs", Value::F64(secs)),
                ("runs_per_sec_on", Value::F64(o.injections as f64 / secs)),
                ("identical", Value::Bool(same)),
                ("oversubscribed", Value::Bool(n > host_cores)),
            ],
        );
        sweep_rows.push((n, secs, same));
    }

    let identical = scratch.len() == fast.len()
        && scratch
            .iter()
            .zip(&fast)
            .all(|(a, b)| a.spec == b.spec && a.outcome == b.outcome && a.fired == b.fired);
    let runs_off = o.injections as f64 / campaign_off_secs;
    let runs_on = o.injections as f64 / campaign_on_secs;
    let speedup = campaign_off_secs / campaign_on_secs;
    vs_telemetry::emit(
        "bench_result",
        &[
            ("off_secs", Value::F64(campaign_off_secs)),
            ("runs_per_sec_off", Value::F64(runs_off)),
            ("on_secs", Value::F64(campaign_on_secs)),
            ("runs_per_sec_on", Value::F64(runs_on)),
            ("speedup", Value::F64(speedup)),
            ("identical", Value::Bool(identical)),
            ("allocs_per_run_steady", Value::F64(allocs.per_run_steady)),
        ],
    );

    // Traced steady-state demo: a few golden runs on this thread (where
    // the sink lives) so the trace ends with `scratch_reuse` counters at
    // grown=0 — what `trace_check --scratch-steady` validates.
    {
        let mut demo = w.make_scratch();
        for _ in 0..4 {
            w.run_scratch(&mut demo).expect("golden run failed");
        }
    }

    let sweep_json = sweep_rows
        .iter()
        .map(|&(n, secs, same)| {
            format!(
                "    {{\"threads\": {n}, \"on_secs\": {}, \"runs_per_sec_on\": {}, \"identical\": {same}, \"oversubscribed\": {}}}",
                json_f(secs),
                json_f(o.injections as f64 / secs),
                n > host_cores
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"campaign_throughput\",\n  \"frames\": {},\n  \"frame_size\": [{}, {}],\n  \"injections\": {},\n  \"threads\": {},\n  \"host_cores\": {},\n  \"checkpoint_every_k\": {},\n  \"checkpoints\": {},\n  \"golden_run_secs\": {},\n  \"golden_capturing_secs\": {},\n  \"campaign_checkpoint_off_secs\": {},\n  \"campaign_checkpoint_on_secs\": {},\n  \"runs_per_sec_off\": {},\n  \"runs_per_sec_on\": {},\n  \"speedup\": {},\n  \"allocs_per_run_scratch\": {},\n  \"allocs_per_run_steady\": {},\n  \"thread_sweep\": [\n{sweep_json}\n  ],\n  \"outcomes_identical\": {}\n}}\n",
        o.frames,
        o.width,
        o.height,
        o.injections,
        primary_threads,
        host_cores,
        o.every_k,
        ck.checkpoints.len(),
        json_f(golden_run_secs),
        json_f(golden_capturing_secs),
        json_f(campaign_off_secs),
        json_f(campaign_on_secs),
        json_f(runs_off),
        json_f(runs_on),
        json_f(speedup),
        allocs.per_run_scratch,
        json_f(allocs.per_run_steady),
        identical && sweep_identical
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("error: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let out_path = o.out.display().to_string();
    vs_telemetry::emit("artifact", &[("path", Value::Str(&out_path))]);
    vs_bench::manifest::Manifest::new("campaign_bench")
        .u64(
            "config_digest",
            vs_bench::manifest::config_digest(&[
                o.frames as u64,
                o.width as u64,
                o.height as u64,
                o.injections as u64,
                o.every_k as u64,
                o.seed,
                pipeline_digest,
            ]),
        )
        .u64("pipeline_digest", pipeline_digest)
        .u64("injections", o.injections as u64)
        .u64("threads", primary_threads as u64)
        .u64("seed", o.seed)
        .f64("runs_per_sec_off", runs_off)
        .f64("runs_per_sec_on", runs_on)
        .f64("speedup", speedup)
        .f64("allocs_per_run_steady", allocs.per_run_steady)
        .bool("identical", identical && sweep_identical)
        .rates(&outcome_rates(&fast))
        .append_default();
    if !identical {
        eprintln!("error: checkpointed campaign diverged from scratch campaign");
        return ExitCode::FAILURE;
    }
    if !sweep_identical {
        eprintln!("error: thread sweep diverged from primary campaign outcomes");
        return ExitCode::FAILURE;
    }
    if allocs.per_run_steady != 0.0 {
        eprintln!(
            "error: steady-state workspace runs still allocate ({} allocs/run)",
            allocs.per_run_steady
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
