//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! repro <fig5|fig6|fig8|fig9|fig10|fig11|fig12|fig13|all>
//!       [--scale quick|paper] [--inj N] [--out DIR] [--threads N] [--seed S]
//!       [--trace FILE]
//! ```
//!
//! `--scale quick` (default) runs laptop-sized campaigns in minutes;
//! `--scale paper --inj 1000` reproduces the paper's campaign sizes
//! (hours on one core — the paper's own 1000-injection runs used a
//! POWER server).
//!
//! `--trace FILE` streams a JSONL telemetry trace (golden-run stage
//! counters, per-injection outcomes, live campaign snapshots with
//! Wilson error bars) alongside the report; progress milestones still
//! print to stdout.

use std::process::ExitCode;
use vs_bench::{figs, Opts};
use vs_core::experiments::Scale;
use vs_telemetry::Value;

const USAGE: &str = "usage: repro <figure|all> [--scale quick|paper] [--inj N] [--out DIR] [--threads N] [--seed S] [--trace FILE]
figures: fig5 fig6 fig8 fig9 fig9a fig9b fig10 fig11 fig11a fig11b fig12 fig13 ablations pruning";

fn parse(args: &[String]) -> Result<(Vec<String>, Opts, Option<std::path::PathBuf>), String> {
    let mut figures = Vec::new();
    let mut opts = Opts::default();
    let mut trace = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let v = it.next().ok_or("--trace needs a value")?;
                trace = Some(v.into());
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--inj" => {
                let v = it.next().ok_or("--inj needs a value")?;
                opts.injections = v.parse().map_err(|_| format!("bad --inj '{v}'"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out_dir = v.into();
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
                if opts.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            f if f.starts_with("fig") || matches!(f, "all" | "ablations" | "pruning") => {
                figures.push(f.to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if figures.is_empty() {
        return Err("no figure requested".into());
    }
    Ok((figures, opts, trace))
}

fn dispatch(figure: &str, opts: &Opts) -> Result<Vec<String>, String> {
    let one = |s: String| vec![s];
    Ok(match figure {
        "fig5" => one(figs::fig5::run(opts)),
        "fig6" => one(figs::fig6::run(opts)),
        "fig8" => one(figs::fig8::run(opts)),
        "fig9" => one(figs::fig9::run(opts)),
        "fig9a" => one(figs::fig9::run_a(opts)),
        "fig9b" => one(figs::fig9::run_b(opts)),
        "fig10" => one(figs::fig10::run(opts)),
        "fig11" => one(figs::fig11::run(opts)),
        "fig11a" => one(figs::fig11::run_a(opts)),
        "fig11b" => one(figs::fig11::run_b(opts)),
        "fig12" => one(figs::fig12::run(opts)),
        "fig13" => one(figs::fig13::run(opts)),
        "ablations" => one(figs::ablations::run(opts)),
        "pruning" => one(figs::pruning::run(opts)),
        "all" => {
            let mut out = Vec::new();
            for f in [
                "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            ] {
                out.extend(dispatch(f, opts)?);
            }
            out
        }
        other => return Err(format!("unknown figure '{other}'")),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (figures, opts, trace) = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match vs_bench::trace::build_sink(trace.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot create trace file: {e}");
            return ExitCode::FAILURE;
        }
    };
    vs_telemetry::set_trace_seed(opts.seed);
    let _telemetry = vs_telemetry::install(sink);
    let scale = format!("{:?}", opts.scale);
    let out_dir = opts.out_dir.display().to_string();
    vs_telemetry::emit(
        "repro_config",
        &[
            ("scale", Value::Str(&scale)),
            ("injections", Value::U64(opts.injections as u64)),
            ("threads", Value::U64(opts.threads as u64)),
            ("seed", Value::U64(opts.seed)),
            ("out", Value::Str(&out_dir)),
        ],
    );
    for figure in &figures {
        let t0 = std::time::Instant::now();
        vs_telemetry::emit("figure_start", &[("figure", Value::Str(figure))]);
        match dispatch(figure, &opts) {
            Ok(reports) => {
                // The report body is the deliverable, not telemetry: it
                // goes straight to stdout.
                for r in reports {
                    println!("{r}");
                }
                vs_telemetry::emit(
                    "figure_done",
                    &[
                        ("figure", Value::Str(figure)),
                        ("secs", Value::F64(t0.elapsed().as_secs_f64())),
                    ],
                );
            }
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
