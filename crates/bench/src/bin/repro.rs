//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! repro <fig5|fig6|fig8|fig9|fig10|fig11|fig12|fig13|all>
//!       [--scale quick|paper] [--inj N] [--out DIR] [--threads N] [--seed S]
//! ```
//!
//! `--scale quick` (default) runs laptop-sized campaigns in minutes;
//! `--scale paper --inj 1000` reproduces the paper's campaign sizes
//! (hours on one core — the paper's own 1000-injection runs used a
//! POWER server).

use std::process::ExitCode;
use vs_bench::{figs, Opts};
use vs_core::experiments::Scale;

const USAGE: &str = "usage: repro <figure|all> [--scale quick|paper] [--inj N] [--out DIR] [--threads N] [--seed S]
figures: fig5 fig6 fig8 fig9 fig9a fig9b fig10 fig11 fig11a fig11b fig12 fig13 ablations pruning";

fn parse(args: &[String]) -> Result<(Vec<String>, Opts), String> {
    let mut figures = Vec::new();
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--inj" => {
                let v = it.next().ok_or("--inj needs a value")?;
                opts.injections = v.parse().map_err(|_| format!("bad --inj '{v}'"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out_dir = v.into();
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
                if opts.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            f if f.starts_with("fig") || matches!(f, "all" | "ablations" | "pruning") => {
                figures.push(f.to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if figures.is_empty() {
        return Err("no figure requested".into());
    }
    Ok((figures, opts))
}

fn dispatch(figure: &str, opts: &Opts) -> Result<Vec<String>, String> {
    let one = |s: String| vec![s];
    Ok(match figure {
        "fig5" => one(figs::fig5::run(opts)),
        "fig6" => one(figs::fig6::run(opts)),
        "fig8" => one(figs::fig8::run(opts)),
        "fig9" => one(figs::fig9::run(opts)),
        "fig9a" => one(figs::fig9::run_a(opts)),
        "fig9b" => one(figs::fig9::run_b(opts)),
        "fig10" => one(figs::fig10::run(opts)),
        "fig11" => one(figs::fig11::run(opts)),
        "fig11a" => one(figs::fig11::run_a(opts)),
        "fig11b" => one(figs::fig11::run_b(opts)),
        "fig12" => one(figs::fig12::run(opts)),
        "fig13" => one(figs::fig13::run(opts)),
        "ablations" => one(figs::ablations::run(opts)),
        "pruning" => one(figs::pruning::run(opts)),
        "all" => {
            let mut out = Vec::new();
            for f in [
                "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            ] {
                out.extend(dispatch(f, opts)?);
            }
            out
        }
        other => return Err(format!("unknown figure '{other}'")),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (figures, opts) = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# repro: scale={:?} injections={} threads={} seed={:#x} out={}",
        opts.scale,
        opts.injections,
        opts.threads,
        opts.seed,
        opts.out_dir.display()
    );
    for figure in &figures {
        let t0 = std::time::Instant::now();
        match dispatch(figure, &opts) {
            Ok(reports) => {
                for r in reports {
                    println!("{r}");
                }
                println!("# {figure} done in {:.1?}\n", t0.elapsed());
            }
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
