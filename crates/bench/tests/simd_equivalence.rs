//! Cross-crate SIMD equivalence: every compiled dispatch level (and
//! the row-band parallel entries) must reproduce the scalar oracle
//! bit-for-bit on golden inputs AND on fault-corrupted inputs.
//!
//! The corrupted inputs matter because SIMD kernels run inside fault
//! campaigns on data an earlier injection already damaged: the
//! bit-exactness contract has to hold on arbitrary bytes, not just on
//! well-behaved rendered frames. Corruption here is deterministic bit
//! flips over the input planes — the same damage an SDC-class fault
//! leaves behind.

use vs_features::fast::{self, FastConfig, FastScratch};
use vs_features::{Descriptor, KeyPoint};
use vs_image::{
    downsample_half_into_level, downsample_half_into_scalar, gaussian_blur_5x5_into_bands,
    gaussian_blur_5x5_into_level, gaussian_blur_5x5_into_scalar, GrayImage, RgbImage, SimdLevel,
};
use vs_linalg::{Mat3, Vec2};
use vs_matching::{Match, RatioMatcher, SimpleMatcher};
use vs_rng::SplitMix64;
use vs_video::{render_input, InputSpec};
use vs_warp::{
    warp_perspective_offset_into_bands, warp_perspective_offset_into_level,
    warp_perspective_offset_into_scalar,
};

fn available_levels() -> Vec<SimdLevel> {
    SimdLevel::ALL
        .into_iter()
        .filter(|l| l.available())
        .collect()
}

/// Flip `n` deterministic bits across a byte plane — the shape of
/// damage an SDC fault leaves in an image that later kernels consume.
fn corrupt_bytes(bytes: &mut [u8], n: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..n {
        let idx = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0u32..8);
        bytes[idx] ^= 1 << bit;
    }
}

/// Golden, corrupted, and adversarial saturation-extreme gray images.
fn gray_inputs() -> Vec<(String, GrayImage)> {
    let frame = render_input(
        &InputSpec::input2_preset()
            .with_frames(1)
            .with_frame_size(201, 117),
    )
    .remove(0);
    let golden = frame.to_gray();
    let mut corrupted = golden.clone();
    corrupt_bytes(corrupted.as_bytes_mut(), 400, 0x5EED_0001);
    let checker = GrayImage::from_fn(97, 64, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
    vec![
        ("golden".into(), golden),
        ("corrupted".into(), corrupted),
        ("checker".into(), checker),
    ]
}

#[test]
fn blur_levels_and_bands_match_scalar_on_golden_and_corrupted() {
    for (name, img) in gray_inputs() {
        let (mut tmp_o, mut out_o) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        gaussian_blur_5x5_into_scalar(&img, &mut tmp_o, &mut out_o);
        let (mut tmp, mut out) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        for level in available_levels() {
            gaussian_blur_5x5_into_level(&img, &mut tmp, &mut out, level);
            assert_eq!(out, out_o, "blur {name} level {level}");
        }
        for bands in [2usize, 3, 5] {
            gaussian_blur_5x5_into_bands(&img, &mut tmp, &mut out, bands);
            assert_eq!(out, out_o, "blur {name} bands {bands}");
        }
    }
}

#[test]
fn downsample_levels_match_scalar_on_golden_and_corrupted() {
    for (name, img) in gray_inputs() {
        let mut out_o = GrayImage::new(0, 0);
        downsample_half_into_scalar(&img, &mut out_o);
        let mut out = GrayImage::new(0, 0);
        for level in available_levels() {
            downsample_half_into_level(&img, &mut out, level);
            assert_eq!(out, out_o, "downsample {name} level {level}");
        }
    }
}

#[test]
fn fast_levels_match_scalar_on_golden_and_corrupted() {
    let cfg = FastConfig::default();
    for (name, img) in gray_inputs() {
        let mut scratch_o = FastScratch::default();
        let mut out_o: Vec<KeyPoint> = Vec::new();
        fast::detect_into_scalar(&img, &cfg, &mut scratch_o, &mut out_o).unwrap();
        for level in available_levels() {
            let mut scratch = FastScratch::default();
            let mut out: Vec<KeyPoint> = Vec::new();
            fast::detect_into_level(&img, &cfg, &mut scratch, &mut out, level).unwrap();
            assert_eq!(out, out_o, "fast {name} level {level}");
        }
    }
}

#[test]
fn warp_levels_and_bands_match_scalar_on_golden_and_corrupted() {
    let frame = render_input(
        &InputSpec::input2_preset()
            .with_frames(1)
            .with_frame_size(160, 120),
    )
    .remove(0);
    let mut corrupted = frame.clone();
    corrupt_bytes(corrupted.as_bytes_mut(), 600, 0x5EED_0002);
    let transforms = [
        Mat3::translation(7.5, -3.0) * Mat3::rotation(0.2),
        Mat3::translation(3.5, -2.25),
        Mat3::from_rows([1.0, 0.01, 2.0, -0.02, 1.0, -1.0, 1e-4, -2e-4, 1.0]),
    ];
    let origin = Vec2::new(-4.0, 2.5);
    for (name, src) in [("golden", &frame), ("corrupted", &corrupted)] {
        for (ti, h) in transforms.iter().enumerate() {
            let (mut dst_o, mut mask_o) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
            warp_perspective_offset_into_scalar(src, h, 150, 110, origin, &mut dst_o, &mut mask_o)
                .unwrap();
            let (mut dst, mut mask) = (RgbImage::new(0, 0), GrayImage::new(0, 0));
            for level in available_levels() {
                warp_perspective_offset_into_level(
                    src, h, 150, 110, origin, &mut dst, &mut mask, level,
                )
                .unwrap();
                assert_eq!(dst, dst_o, "warp {name} t{ti} level {level}: pixels");
                assert_eq!(mask, mask_o, "warp {name} t{ti} level {level}: mask");
            }
            for bands in [2usize, 4] {
                warp_perspective_offset_into_bands(
                    src, h, 150, 110, origin, &mut dst, &mut mask, bands,
                )
                .unwrap();
                assert_eq!(dst, dst_o, "warp {name} t{ti} bands {bands}: pixels");
                assert_eq!(mask, mask_o, "warp {name} t{ti} bands {bands}: mask");
            }
        }
    }
}

#[test]
fn matchers_match_scalar_on_golden_and_corrupted_descriptors() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    let golden: Vec<Descriptor> = (0..96)
        .map(|_| Descriptor(std::array::from_fn(|_| rng.next_u64())))
        .collect();
    let mut corrupted = golden.clone();
    for d in &mut corrupted {
        let w = rng.gen_range(0..4usize);
        d.0[w] ^= 1u64 << rng.gen_range(0u32..64);
    }
    let ratio = RatioMatcher::default();
    let simple = SimpleMatcher::default();
    for (name, query, train) in [
        ("golden", &golden, &corrupted),
        ("corrupted", &corrupted, &golden),
    ] {
        let mut r_o: Vec<Match> = Vec::new();
        let mut s_o: Vec<Match> = Vec::new();
        ratio
            .matches_into_level(query, train, &mut r_o, SimdLevel::Scalar)
            .unwrap();
        simple
            .matches_into_level(query, train, &mut s_o, SimdLevel::Scalar)
            .unwrap();
        for level in available_levels() {
            let mut r: Vec<Match> = Vec::new();
            let mut s: Vec<Match> = Vec::new();
            ratio
                .matches_into_level(query, train, &mut r, level)
                .unwrap();
            simple
                .matches_into_level(query, train, &mut s, level)
                .unwrap();
            assert_eq!(r, r_o, "ratio {name} level {level}");
            assert_eq!(s, s_o, "simple {name} level {level}");
        }
    }
}
