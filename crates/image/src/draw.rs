//! Drawing primitives, used by the synthetic-terrain generator to paint
//! roads, fields and buildings.

use crate::{GrayImage, RgbImage};

/// Fill an axis-aligned rectangle, clipped to the image.
pub fn fill_rect_gray(img: &mut GrayImage, x: isize, y: isize, w: usize, h: usize, v: u8) {
    let x0 = x.max(0) as usize;
    let y0 = y.max(0) as usize;
    let x1 = ((x + w as isize).max(0) as usize).min(img.width());
    let y1 = ((y + h as isize).max(0) as usize).min(img.height());
    for yy in y0..y1 {
        for xx in x0..x1 {
            img.set(xx, yy, v);
        }
    }
}

/// Fill an axis-aligned rectangle on an RGB image, clipped to the image.
pub fn fill_rect_rgb(img: &mut RgbImage, x: isize, y: isize, w: usize, h: usize, p: [u8; 3]) {
    let x0 = x.max(0) as usize;
    let y0 = y.max(0) as usize;
    let x1 = ((x + w as isize).max(0) as usize).min(img.width());
    let y1 = ((y + h as isize).max(0) as usize).min(img.height());
    for yy in y0..y1 {
        for xx in x0..x1 {
            img.set(xx, yy, p);
        }
    }
}

/// Draw a line with Bresenham's algorithm, clipped to the image, with a
/// square brush of the given radius (0 = single pixel).
pub fn draw_line_gray(
    img: &mut GrayImage,
    mut x0: isize,
    mut y0: isize,
    x1: isize,
    y1: isize,
    radius: usize,
    v: u8,
) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        stamp(img, x0, y0, radius, v);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Draw a filled disc, clipped to the image.
pub fn draw_disc_gray(img: &mut GrayImage, cx: isize, cy: isize, radius: usize, v: u8) {
    let r = radius as isize;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy <= r * r {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 {
                    img.set(x as usize, y as usize, v);
                }
            }
        }
    }
}

fn stamp(img: &mut GrayImage, cx: isize, cy: isize, radius: usize, v: u8) {
    let r = radius as isize;
    for dy in -r..=r {
        for dx in -r..=r {
            let (x, y) = (cx + dx, cy + dy);
            if x >= 0 && y >= 0 {
                img.set(x as usize, y as usize, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_fill_is_clipped() {
        let mut img = GrayImage::new(4, 4);
        fill_rect_gray(&mut img, -2, -2, 4, 4, 9);
        assert_eq!(img.get(0, 0), Some(9));
        assert_eq!(img.get(1, 1), Some(9));
        assert_eq!(img.get(2, 2), Some(0));
        fill_rect_gray(&mut img, 3, 3, 10, 10, 5);
        assert_eq!(img.get(3, 3), Some(5));
    }

    #[test]
    fn rgb_rect_fill() {
        let mut img = RgbImage::new(3, 3);
        fill_rect_rgb(&mut img, 1, 1, 2, 2, [1, 2, 3]);
        assert_eq!(img.get(1, 1), Some([1, 2, 3]));
        assert_eq!(img.get(0, 0), Some([0, 0, 0]));
    }

    #[test]
    fn line_connects_endpoints() {
        let mut img = GrayImage::new(8, 8);
        draw_line_gray(&mut img, 0, 0, 7, 7, 0, 255);
        for i in 0..8 {
            assert_eq!(img.get(i, i), Some(255), "diagonal pixel {i}");
        }
    }

    #[test]
    fn line_with_radius_thickens() {
        let mut img = GrayImage::new(8, 8);
        draw_line_gray(&mut img, 0, 4, 7, 4, 1, 200);
        assert_eq!(img.get(3, 3), Some(200));
        assert_eq!(img.get(3, 4), Some(200));
        assert_eq!(img.get(3, 5), Some(200));
        assert_eq!(img.get(3, 1), Some(0));
    }

    #[test]
    fn disc_is_round_and_clipped() {
        let mut img = GrayImage::new(9, 9);
        draw_disc_gray(&mut img, 4, 4, 3, 77);
        assert_eq!(img.get(4, 4), Some(77));
        assert_eq!(img.get(4, 1), Some(77));
        assert_eq!(img.get(1, 1), Some(0), "corner outside the disc");
        // Clipping: a disc centred off-image must not panic.
        draw_disc_gray(&mut img, -1, -1, 2, 5);
        assert_eq!(img.get(0, 0), Some(5));
    }
}
