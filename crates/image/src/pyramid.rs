//! Image pyramids.
//!
//! ORB detects FAST corners at several scales; the pyramid here halves
//! resolution per level with 2×2 box averaging.

use crate::{saturate_u8, GrayImage};

/// Downsample by a factor of two with 2×2 box averaging.
///
/// Odd trailing rows/columns are dropped, matching the conventional
/// `pyrDown` grid. Images smaller than 2×2 collapse to an empty image.
pub fn downsample_half(img: &GrayImage) -> GrayImage {
    let mut out = GrayImage::new(0, 0);
    downsample_half_into(img, &mut out);
    out
}

/// [`downsample_half`] into a caller-owned image, reusing its buffer.
///
/// The 2×2 block average runs in pure integer arithmetic: the block sum
/// `S ≤ 4*255 = 1020` is a dyadic numerator, so the historical
/// `saturate_u8(S as f64 / 4.0)` (exact division, round half away from
/// zero, max 255) is exactly `(S + 2) >> 2` — proven exhaustively over
/// every reachable sum in the tests and kept honest by the float oracle
/// [`downsample_half_into_scalar`]. Returns whether the destination
/// buffer grew.
///
/// Dispatches to the widest proven-bit-exact implementation for the
/// process ([`crate::dispatch::level`]); use
/// [`downsample_half_into_level`] to pin a level explicitly.
pub fn downsample_half_into(img: &GrayImage, out: &mut GrayImage) -> bool {
    downsample_half_into_level(img, out, crate::dispatch::level())
}

/// [`downsample_half_into`] at an explicit [`SimdLevel`]. All levels
/// produce bit-identical output.
pub fn downsample_half_into_level(
    img: &GrayImage,
    out: &mut GrayImage,
    level: crate::dispatch::SimdLevel,
) -> bool {
    use crate::dispatch::SimdLevel;
    match level {
        SimdLevel::Scalar => downsample_half_into_scalar(img, out),
        SimdLevel::Swar => downsample_half_into_swar(img, out),
        SimdLevel::Sse2 => crate::simd::downsample_half_sse2(img, out),
        SimdLevel::Avx2 => crate::simd::downsample_half_avx2(img, out),
    }
}

/// The integer pass from PR 4, kept addressable as the portable proof
/// oracle the vector paths are verified against.
pub fn downsample_half_into_swar(img: &GrayImage, out: &mut GrayImage) -> bool {
    let w = img.width() / 2;
    let h = img.height() / 2;
    let grew = out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if w == 0 || h == 0 {
        return grew;
    }
    let src = img.as_bytes();
    let src_w = img.width();
    let dst = out.as_bytes_mut();
    for (y, dst_row) in dst.chunks_exact_mut(w).enumerate() {
        let row0 = &src[2 * y * src_w..2 * y * src_w + src_w];
        let row1 = &src[(2 * y + 1) * src_w..(2 * y + 1) * src_w + src_w];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let acc = row0[2 * x] as u32
                + row0[2 * x + 1] as u32
                + row1[2 * x] as u32
                + row1[2 * x + 1] as u32;
            *d = ((acc + 2) >> 2) as u8;
        }
    }
    grew
}

/// Float reference oracle for [`downsample_half_into`]: the original
/// `u32`-sum / `f64`-average / [`saturate_u8`] arithmetic. Exposed so
/// the kernel equivalence harness and `kernel_bench` can verify and
/// time the integer pass against it.
pub fn downsample_half_into_scalar(img: &GrayImage, out: &mut GrayImage) -> bool {
    let w = img.width() / 2;
    let h = img.height() / 2;
    let grew = out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if w == 0 || h == 0 {
        return grew;
    }
    let src = img.as_bytes();
    let src_w = img.width();
    let dst = out.as_bytes_mut();
    for (y, dst_row) in dst.chunks_exact_mut(w).enumerate() {
        let row0 = &src[2 * y * src_w..2 * y * src_w + src_w];
        let row1 = &src[(2 * y + 1) * src_w..(2 * y + 1) * src_w + src_w];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let acc = row0[2 * x] as u32
                + row0[2 * x + 1] as u32
                + row1[2 * x] as u32
                + row1[2 * x + 1] as u32;
            *d = saturate_u8(acc as f64 / 4.0);
        }
    }
    grew
}

/// A multi-scale pyramid: level 0 is the source image, each further level
/// halves the resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
}

impl Pyramid {
    /// Build a pyramid with at most `max_levels` levels, stopping early
    /// when a level would fall below `min_size` pixels on a side.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels` is zero.
    pub fn new(base: &GrayImage, max_levels: usize, min_size: usize) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        let mut levels = vec![base.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty by construction");
            if prev.width() / 2 < min_size || prev.height() / 2 < min_size {
                break;
            }
            levels.push(downsample_half(prev));
        }
        Pyramid { levels }
    }

    /// Number of levels actually built.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the pyramid has no levels (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Image at `level` (0 = full resolution).
    pub fn level(&self, level: usize) -> Option<&GrayImage> {
        self.levels.get(level)
    }

    /// The scale factor mapping level-`level` coordinates back to level 0.
    pub fn scale(&self, level: usize) -> f64 {
        (1u64 << level) as f64
    }

    /// Iterate over `(level_index, image)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &GrayImage)> {
        self.levels.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_averages_blocks() {
        let img = GrayImage::from_fn(4, 2, |x, _| (x as u8) * 40);
        // Blocks: {0,40,0,40}->20, {80,120,80,120}->100
        let d = downsample_half(&img);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), Some(20));
        assert_eq!(d.get(1, 0), Some(100));
    }

    #[test]
    fn downsample_into_matches_allocating_version() {
        let img = GrayImage::from_fn(9, 7, |x, y| (x * 31 + y * 17) as u8);
        let mut out = GrayImage::from_fn(3, 3, |_, _| 99);
        let grew = downsample_half_into(&img, &mut out);
        assert!(grew, "9-pixel buffer cannot hold a 12-pixel result");
        assert_eq!(out, downsample_half(&img));
        assert!(!downsample_half_into(&img, &mut out), "second pass reuses");
    }

    /// Every reachable 2×2 block sum rounds identically through the
    /// integer shift and the float funnel.
    #[test]
    fn integer_rounding_matches_float_for_all_block_sums() {
        for s in 0u32..=1020 {
            assert_eq!(((s + 2) >> 2) as u8, saturate_u8(s as f64 / 4.0), "sum {s}");
        }
    }

    /// Randomized equivalence: integer downsample vs the float oracle.
    #[test]
    fn downsample_matches_scalar_reference_randomized() {
        let mut rng = vs_rng::SplitMix64::new(0xD0_5EED);
        let mut a = GrayImage::new(0, 0);
        let mut b = GrayImage::new(0, 0);
        for trial in 0..40 {
            let w = 1 + rng.gen_range(0usize..33);
            let h = 1 + rng.gen_range(0usize..33);
            let img = GrayImage::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8);
            downsample_half_into(&img, &mut a);
            downsample_half_into_scalar(&img, &mut b);
            assert_eq!(a, b, "trial {trial}: {w}x{h}");
        }
    }

    #[test]
    fn odd_dimensions_truncate() {
        let img = GrayImage::new(5, 3);
        let d = downsample_half(&img);
        assert_eq!((d.width(), d.height()), (2, 1));
    }

    /// HD odd-dimension halving: 1919×1079-class frames drop the odd
    /// trailing row/column at every level and stay bit-identical to the
    /// float oracle (the dispatched path may be a vector level here).
    #[test]
    fn hd_odd_dimensions_match_oracle() {
        let mut rng = vs_rng::SplitMix64::new(0x1919_1079);
        let img = GrayImage::from_fn(1919, 1079, |_, _| rng.gen_range(0u32..256) as u8);
        let mut a = GrayImage::new(0, 0);
        let mut b = GrayImage::new(0, 0);
        downsample_half_into(&img, &mut a);
        downsample_half_into_scalar(&img, &mut b);
        assert_eq!((a.width(), a.height()), (959, 539));
        assert_eq!(a, b, "dispatched HD downsample vs float oracle");
        let p = Pyramid::new(&img, 4, 8);
        let sizes: Vec<_> = p.iter().map(|(_, im)| (im.width(), im.height())).collect();
        assert_eq!(
            sizes,
            vec![(1919, 1079), (959, 539), (479, 269), (239, 134)]
        );
        assert_eq!(
            p.level(1).unwrap(),
            &a,
            "pyramid level 1 is the halved frame"
        );
    }

    #[test]
    fn pyramid_respects_min_size() {
        let img = GrayImage::new(64, 64);
        let p = Pyramid::new(&img, 10, 16);
        // 64 -> 32 -> 16, then 16/2=8 < 16 stops.
        assert_eq!(p.len(), 3);
        assert_eq!(p.level(2).unwrap().width(), 16);
        assert!(p.level(3).is_none());
        assert!(!p.is_empty());
    }

    #[test]
    fn pyramid_respects_max_levels() {
        let img = GrayImage::new(1024, 1024);
        let p = Pyramid::new(&img, 3, 4);
        assert_eq!(p.len(), 3);
        assert_eq!(p.scale(0), 1.0);
        assert_eq!(p.scale(2), 4.0);
    }

    #[test]
    fn iter_yields_all_levels() {
        let img = GrayImage::new(32, 32);
        let p = Pyramid::new(&img, 4, 2);
        let sizes: Vec<_> = p.iter().map(|(i, im)| (i, im.width())).collect();
        assert_eq!(sizes, vec![(0, 32), (1, 16), (2, 8), (3, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        let _ = Pyramid::new(&GrayImage::new(8, 8), 0, 2);
    }
}
