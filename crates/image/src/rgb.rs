//! 8-bit three-channel (RGB) images.

use crate::gray::GrayImage;
use crate::MAX_PIXELS;
use std::fmt;

/// An 8-bit RGB image in row-major, interleaved layout.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImage {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` exceeds [`MAX_PIXELS`]. Use
    /// [`RgbImage::try_new`] when dimensions are untrusted.
    pub fn new(width: usize, height: usize) -> Self {
        Self::try_new(width, height).expect("image dimensions exceed MAX_PIXELS")
    }

    /// A black image, or `None` if the dimensions overflow the pixel cap.
    pub fn try_new(width: usize, height: usize) -> Option<Self> {
        let pixels = width.checked_mul(height)?;
        if pixels > MAX_PIXELS {
            return None;
        }
        Some(RgbImage {
            width,
            height,
            data: vec![0u8; pixels * 3],
        })
    }

    /// Reuse this image's buffer as a zero-filled `width`×`height`
    /// image, or `None` if the dimensions overflow the pixel cap.
    ///
    /// Same contract as [`GrayImage::try_reset`]: the allocation is kept
    /// whenever the capacity suffices, and the returned flag reports
    /// whether the buffer had to grow.
    pub fn try_reset(&mut self, width: usize, height: usize) -> Option<bool> {
        let pixels = width.checked_mul(height)?;
        if pixels > MAX_PIXELS {
            return None;
        }
        let grew = pixels * 3 > self.data.capacity();
        self.data.clear();
        self.data.resize(pixels * 3, 0);
        self.width = width;
        self.height = height;
        Some(grew)
    }

    /// Heap capacity of the pixel buffer, in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Overwrite this image with a bit-copy of `src`, reusing the
    /// existing buffer whenever its capacity suffices — the
    /// allocation-free counterpart of `clone` for recycled workspaces.
    pub fn copy_from(&mut self, src: &RgbImage) {
        self.width = src.width;
        self.height = src.height;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Build an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [u8; 3],
    ) -> Self {
        let mut img = RgbImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let p = f(x, y);
                let o = (y * width + x) * 3;
                img.data[o..o + 3].copy_from_slice(&p);
            }
        }
        img
    }

    /// Replicate a grayscale image into all three channels.
    pub fn from_gray(gray: &GrayImage) -> Self {
        RgbImage::from_fn(gray.width(), gray.height(), |x, y| {
            let v = gray.get(x, y).unwrap_or(0);
            [v, v, v]
        })
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether the image has zero area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checked pixel read.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<[u8; 3]> {
        if x < self.width && y < self.height {
            let o = (y * self.width + x) * 3;
            Some([self.data[o], self.data[o + 1], self.data[o + 2]])
        } else {
            None
        }
    }

    /// Pixel read with replicate border padding.
    ///
    /// # Panics
    ///
    /// Panics if the image is empty.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> [u8; 3] {
        assert!(!self.is_empty(), "get_clamped on empty image");
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        let o = (cy * self.width + cx) * 3;
        [self.data[o], self.data[o + 1], self.data[o + 2]]
    }

    /// Checked pixel write; returns false when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, p: [u8; 3]) -> bool {
        if x < self.width && y < self.height {
            let o = (y * self.width + x) * 3;
            self.data[o..o + 3].copy_from_slice(&p);
            true
        } else {
            false
        }
    }

    /// Interleaved RGB bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable interleaved RGB bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Convert to grayscale with the ITU-R BT.601 luma weights, the same
    /// weights OpenCV's `cvtColor(COLOR_RGB2GRAY)` uses.
    pub fn to_gray(&self) -> GrayImage {
        let mut out = GrayImage::new(0, 0);
        self.to_gray_into(&mut out);
        out
    }

    /// Grayscale conversion into a caller-owned image, reusing its
    /// buffer. Bit-identical to [`RgbImage::to_gray`]: the row-wise
    /// slice walk performs the same fixed-point luma computation in the
    /// same raster order. Returns whether the destination buffer grew.
    pub fn to_gray_into(&self, out: &mut GrayImage) -> bool {
        // `self` exists, so width*height already respects MAX_PIXELS.
        let grew = out
            .try_reset(self.width, self.height)
            .expect("image dimensions exceed MAX_PIXELS");
        if self.width == 0 || self.height == 0 {
            return grew;
        }
        let dst = out.as_bytes_mut();
        for (dst_row, src_row) in dst
            .chunks_exact_mut(self.width)
            .zip(self.data.chunks_exact(self.width * 3))
        {
            for (d, px) in dst_row.iter_mut().zip(src_row.chunks_exact(3)) {
                let r = px[0] as u32;
                let g = px[1] as u32;
                let b = px[2] as u32;
                // Fixed-point 0.299 R + 0.587 G + 0.114 B.
                *d = ((r * 306 + g * 601 + b * 117 + 512) >> 10) as u8;
            }
        }
        grew
    }

    /// Bilinear sample of all channels at fractional coordinates.
    ///
    /// Returns `None` for non-finite or far-out-of-range coordinates.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> Option<[f64; 3]> {
        if !x.is_finite() || !y.is_finite() || self.is_empty() {
            return None;
        }
        if x < -1.0 || y < -1.0 || x > self.width as f64 || y > self.height as f64 {
            return None;
        }
        let x0f = x.floor();
        let y0f = y.floor();
        let fx = x - x0f;
        let fy = y - y0f;
        let x0 = x0f as isize;
        let y0 = y0f as isize;
        let p00 = self.get_clamped(x0, y0);
        let p10 = self.get_clamped(x0 + 1, y0);
        let p01 = self.get_clamped(x0, y0 + 1);
        let p11 = self.get_clamped(x0 + 1, y0 + 1);
        let mut out = [0.0f64; 3];
        for c in 0..3 {
            let top = p00[c] as f64 + (p10[c] as f64 - p00[c] as f64) * fx;
            let bottom = p01[c] as f64 + (p11[c] as f64 - p01[c] as f64) * fx;
            out[c] = top + (bottom - top) * fy;
        }
        Some(out)
    }

    /// Extract a sub-image; `None` if the rectangle escapes the bounds.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Option<RgbImage> {
        let mut out = RgbImage::new(0, 0);
        self.crop_into(x, y, w, h, &mut out).then_some(out)
    }

    /// Extract a sub-image into a caller-owned image, reusing its
    /// buffer. Returns `false` (leaving `out` untouched) if the
    /// rectangle escapes the bounds.
    pub fn crop_into(&self, x: usize, y: usize, w: usize, h: usize, out: &mut RgbImage) -> bool {
        let in_bounds = x.checked_add(w).is_some_and(|r| r <= self.width)
            && y.checked_add(h).is_some_and(|b| b <= self.height);
        if !in_bounds || out.try_reset(w, h).is_none() {
            return false;
        }
        for row in 0..h {
            let src_off = ((y + row) * self.width + x) * 3;
            let dst_off = row * w * 3;
            out.data[dst_off..dst_off + w * 3]
                .copy_from_slice(&self.data[src_off..src_off + w * 3]);
        }
        true
    }
}

impl Default for RgbImage {
    /// An empty 0×0 image — the natural seed for reusable scratch
    /// buffers that grow on first use.
    fn default() -> Self {
        RgbImage::new(0, 0)
    }
}

impl fmt::Debug for RgbImage {
    /// Compact representation: dimensions only.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RgbImage {{ {}x{} }}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut img = RgbImage::new(3, 2);
        assert!(img.set(2, 1, [1, 2, 3]));
        assert_eq!(img.get(2, 1), Some([1, 2, 3]));
        assert_eq!(img.get(3, 0), None);
        assert!(!img.set(0, 2, [0, 0, 0]));
    }

    #[test]
    fn gray_conversion_matches_luma_weights() {
        let img = RgbImage::from_fn(1, 1, |_, _| [255, 0, 0]);
        let g = img.to_gray();
        let v = g.get(0, 0).unwrap();
        assert!(
            (v as i32 - 76).abs() <= 1,
            "red luma should be ~76, got {v}"
        );
        let white = RgbImage::from_fn(1, 1, |_, _| [255, 255, 255]).to_gray();
        assert_eq!(white.get(0, 0), Some(255));
    }

    #[test]
    fn gray_roundtrip_preserves_values() {
        let g = GrayImage::from_fn(4, 4, |x, y| (x * 16 + y) as u8);
        let rgb = RgbImage::from_gray(&g);
        assert_eq!(rgb.to_gray(), g);
    }

    #[test]
    fn bilinear_midpoint() {
        let mut img = RgbImage::new(2, 1);
        img.set(0, 0, [0, 10, 20]);
        img.set(1, 0, [100, 30, 40]);
        let s = img.sample_bilinear(0.5, 0.0).unwrap();
        assert_eq!(s, [50.0, 20.0, 30.0]);
    }

    #[test]
    fn crop_matches_source() {
        let img = RgbImage::from_fn(5, 5, |x, y| [x as u8, y as u8, 7]);
        let c = img.crop(1, 2, 3, 2).unwrap();
        assert_eq!(c.get(0, 0), img.get(1, 2));
        assert_eq!(c.get(2, 1), img.get(3, 3));
        assert!(img.crop(4, 4, 2, 2).is_none());
    }

    #[test]
    fn to_gray_into_matches_to_gray_and_reuses_buffer() {
        let img = RgbImage::from_fn(7, 5, |x, y| [x as u8, (y * 3) as u8, (x * y) as u8]);
        let mut out = GrayImage::from_fn(9, 9, |_, _| 42);
        let grew = img.to_gray_into(&mut out);
        assert!(!grew, "81-pixel buffer must absorb a 35-pixel result");
        assert_eq!(out, img.to_gray());
    }

    #[test]
    fn crop_into_matches_crop() {
        let img = RgbImage::from_fn(5, 5, |x, y| [x as u8, y as u8, 7]);
        let mut out = RgbImage::new(8, 8);
        assert!(img.crop_into(1, 2, 3, 2, &mut out));
        assert_eq!(Some(out.clone()), img.crop(1, 2, 3, 2));
        assert!(!img.crop_into(4, 4, 2, 2, &mut out));
        assert_eq!(out.width(), 3, "failed crop must leave the target alone");
    }

    #[test]
    fn try_reset_reuses_capacity() {
        let mut img = RgbImage::from_fn(4, 4, |_, _| [1, 2, 3]);
        assert!(!img.try_reset(2, 2).unwrap());
        assert!(img.as_bytes().iter().all(|&v| v == 0));
        assert!(img.try_reset(8, 8).unwrap());
        assert!(img.try_reset(usize::MAX, 3).is_none());
    }

    #[test]
    fn try_new_caps_allocation() {
        assert!(RgbImage::try_new(1 << 15, 1 << 15).is_none());
        assert!(RgbImage::try_new(64, 64).is_some());
    }

    #[test]
    fn clamped_reads() {
        let img = RgbImage::from_fn(2, 2, |x, y| [(x * 2 + y) as u8, 0, 0]);
        assert_eq!(img.get_clamped(-1, -1), img.get(0, 0).unwrap());
        assert_eq!(img.get_clamped(5, 5), img.get(1, 1).unwrap());
    }
}
