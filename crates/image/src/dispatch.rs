//! Runtime SIMD dispatch for the hot kernels.
//!
//! Every optimized kernel in the workspace exists at up to four levels —
//! the float scalar oracle, the SWAR/fixed-point rewrite (PR 4), and
//! explicit SSE2/AVX2 vector paths — all proven bit-exact to each other,
//! so which one runs is purely a throughput decision. This module makes
//! that decision once per process:
//!
//! * `VS_SIMD=scalar|swar|sse2|avx2` pins the level (useful for A/B
//!   verification and for testing every path on any host),
//! * `VS_SIMD=auto` (or unset) picks the widest level the CPU supports:
//!   AVX2 when `is_x86_feature_detected!` reports it, else SSE2 on
//!   x86-64 (part of the baseline ISA), else SWAR.
//!
//! The choice is cached in a `OnceLock`, so per-call dispatch is a load
//! and a jump. Campaign record equality across levels is enforced by
//! `scripts/verify.sh`, which replays the same campaign under `scalar`,
//! `swar`, and `auto` in separate processes and diffs the records.

use std::sync::OnceLock;

/// One implementation level of a dispatched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// The float/per-pixel reference oracles.
    Scalar,
    /// SWAR and fixed-point integer rewrites (portable).
    Swar,
    /// Explicit SSE2 intrinsics (baseline x86-64).
    Sse2,
    /// Explicit AVX2 intrinsics (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// All levels, narrowest first.
    pub const ALL: [SimdLevel; 4] = [
        SimdLevel::Scalar,
        SimdLevel::Swar,
        SimdLevel::Sse2,
        SimdLevel::Avx2,
    ];

    /// The `VS_SIMD` spelling of this level.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Swar => "swar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Whether this level can run on the current host.
    pub fn available(self) -> bool {
        match self {
            SimdLevel::Scalar | SimdLevel::Swar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Sse2 | SimdLevel::Avx2 => false,
        }
    }

    /// Parse a `VS_SIMD` value. `auto` maps to [`detect`]; unknown
    /// spellings are `None`.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "swar" => Some(SimdLevel::Swar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "auto" => Some(detect()),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Widest level the current CPU supports.
pub fn detect() -> SimdLevel {
    if SimdLevel::Avx2.available() {
        SimdLevel::Avx2
    } else if SimdLevel::Sse2.available() {
        SimdLevel::Sse2
    } else {
        SimdLevel::Swar
    }
}

/// The process-wide dispatch level: `VS_SIMD` when set (a pinned level
/// must be available on this host), else [`detect`]. Read once; every
/// dispatched kernel consults this.
///
/// # Panics
///
/// Panics on an unknown `VS_SIMD` value or a pinned level the host
/// cannot run (e.g. `VS_SIMD=avx2` without AVX2) — a silent fallback
/// would invalidate any A/B measurement the override was set up for.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("VS_SIMD") {
        Ok(v) => {
            let lvl = SimdLevel::parse(&v)
                .unwrap_or_else(|| panic!("VS_SIMD={v:?}: expected scalar|swar|sse2|avx2|auto"));
            assert!(
                lvl.available(),
                "VS_SIMD={v:?}: level {lvl} is not available on this host"
            );
            lvl
        }
        Err(_) => detect(),
    })
}

/// Comma-separated list of the vector features this host exposes, for
/// bench provenance (`BENCH_6.json` records it next to the timings).
pub fn detected_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if SimdLevel::Sse2.available() {
        feats.push("sse2");
    }
    if SimdLevel::Avx2.available() {
        feats.push("avx2");
    }
    if feats.is_empty() {
        feats.push("none");
    }
    feats.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_levels_are_always_available() {
        assert!(SimdLevel::Scalar.available());
        assert!(SimdLevel::Swar.available());
    }

    #[test]
    fn parse_accepts_known_levels() {
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("SWAR"), Some(SimdLevel::Swar));
        assert_eq!(SimdLevel::parse(" sse2 "), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse("avx2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("auto"), Some(detect()));
        assert_eq!(SimdLevel::parse("avx512"), None);
        assert_eq!(SimdLevel::parse(""), None);
    }

    #[test]
    fn detect_is_available_and_at_least_swar() {
        let d = detect();
        assert!(d.available());
        assert_ne!(d, SimdLevel::Scalar, "auto never picks the oracle");
    }

    #[test]
    fn level_is_stable_and_available() {
        let a = level();
        let b = level();
        assert_eq!(a, b, "dispatch level must be cached");
        assert!(a.available());
    }

    #[test]
    fn detected_features_lists_what_availability_says() {
        let f = detected_features();
        assert_eq!(f.contains("sse2"), SimdLevel::Sse2.available());
        assert_eq!(f.contains("avx2"), SimdLevel::Avx2.available());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for lvl in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(lvl.as_str()), Some(lvl));
        }
    }
}
