//! Separable smoothing filters.
//!
//! ORB smooths the image before sampling BRIEF point pairs; the synthetic
//! terrain generator uses blurs to soften painted structure.
//!
//! The binomial Gaussian blurs run as fixed-point u16 row/column passes.
//! Their weights are dyadic rationals (k/2^s), so the historical float
//! path computes every partial sum exactly in `f64`; the integer passes
//! reproduce it bit-for-bit (see [`separable_blur_fixed_into`]) and the
//! float code is retained as the reference oracle
//! ([`gaussian_blur_5x5_into_scalar`]).

use crate::{saturate_u8, GrayImage};

/// Box blur with a `(2*radius+1)`² kernel, replicate borders.
///
/// Radius 0 returns a copy.
pub fn box_blur(img: &GrayImage, radius: usize) -> GrayImage {
    if radius == 0 || img.is_empty() {
        return img.clone();
    }
    let r = radius as isize;
    let norm = (2 * radius + 1) as f64;
    // Horizontal pass.
    let horiz = GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0;
        for dx in -r..=r {
            acc += img.get_clamped(x as isize + dx, y as isize) as f64;
        }
        saturate_u8(acc / norm)
    });
    // Vertical pass.
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0;
        for dy in -r..=r {
            acc += horiz.get_clamped(x as isize, y as isize + dy) as f64;
        }
        saturate_u8(acc / norm)
    })
}

/// Float reference for the separable blurs: per-pixel `get_clamped`
/// accumulation in `f64`, then [`saturate_u8`]. Kept as the oracle the
/// fixed-point passes are proven against.
fn separable_blur_into_scalar(
    img: &GrayImage,
    kernel: &[f64],
    tmp: &mut GrayImage,
    out: &mut GrayImage,
) -> bool {
    let (w, h) = (img.width(), img.height());
    let mut grew = tmp
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    grew |= out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if img.is_empty() {
        return grew;
    }
    let r = (kernel.len() / 2) as isize;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in kernel.iter().enumerate() {
                acc += k * img.get_clamped(x as isize + i as isize - r, y as isize) as f64;
            }
            tmp.set(x, y, saturate_u8(acc));
        }
    }
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in kernel.iter().enumerate() {
                acc += k * tmp.get_clamped(x as isize, y as isize + i as isize - r) as f64;
            }
            out.set(x, y, saturate_u8(acc));
        }
    }
    grew
}

/// Fixed-point separable convolution for binomial kernels whose float
/// weights are `weights[i] / 2^shift`.
///
/// Bit-exactness vs the float path: each float weight `k/2^shift` is a
/// dyadic rational, and every product `k/2^shift * v` (v ≤ 255) and every
/// partial sum has ≤ `shift` fractional bits with numerator far below
/// 2^53, so the float accumulation is exact and equals `S / 2^shift` for
/// the integer sum `S` computed here. `saturate_u8` rounds half away
/// from zero; for a non-negative dyadic `S / 2^shift` that is exactly
/// `(S + 2^(shift-1)) >> shift`, and the result cannot exceed 255
/// because `S ≤ 255 * 2^shift`. The u16 accumulator cannot overflow:
/// `S + 2^(shift-1) ≤ 255*16 + 8 = 4088`.
fn separable_blur_fixed_into<const N: usize>(
    img: &GrayImage,
    weights: &[u16; N],
    shift: u32,
    tmp: &mut GrayImage,
    out: &mut GrayImage,
) -> bool {
    let (w, h) = (img.width(), img.height());
    let mut grew = tmp
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    grew |= out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if img.is_empty() {
        return grew;
    }
    let r = N / 2;
    let half = 1u16 << (shift - 1);
    let src = img.as_bytes();
    // Horizontal pass: clamped accumulation on the border columns,
    // branch-free windowed reads in the interior.
    {
        let dst = tmp.as_bytes_mut();
        for y in 0..h {
            let row = &src[y * w..y * w + w];
            let trow = &mut dst[y * w..y * w + w];
            let clamped_at = |x: usize, i: usize| {
                let xi = x as isize + i as isize - r as isize;
                row[xi.clamp(0, w as isize - 1) as usize] as u16
            };
            if w > 2 * r {
                for (x, t) in trow.iter_mut().enumerate().take(r) {
                    let mut s = half;
                    for (i, &k) in weights.iter().enumerate() {
                        s += k * clamped_at(x, i);
                    }
                    *t = (s >> shift) as u8;
                }
                for x in r..w - r {
                    let win = &row[x - r..x + r + 1];
                    let mut s = half;
                    for (i, &k) in weights.iter().enumerate() {
                        s += k * win[i] as u16;
                    }
                    trow[x] = (s >> shift) as u8;
                }
                for (x, t) in trow.iter_mut().enumerate().skip(w - r) {
                    let mut s = half;
                    for (i, &k) in weights.iter().enumerate() {
                        s += k * clamped_at(x, i);
                    }
                    *t = (s >> shift) as u8;
                }
            } else {
                for (x, t) in trow.iter_mut().enumerate() {
                    let mut s = half;
                    for (i, &k) in weights.iter().enumerate() {
                        s += k * clamped_at(x, i);
                    }
                    *t = (s >> shift) as u8;
                }
            }
        }
    }
    // Vertical pass: N row slices with clamped indices per output row,
    // then a branch-free column sweep the compiler can vectorize.
    {
        let t = tmp.as_bytes();
        let dst = out.as_bytes_mut();
        for y in 0..h {
            let rows: [&[u8]; N] = std::array::from_fn(|i| {
                let yi = y as isize + i as isize - r as isize;
                let yc = yi.clamp(0, h as isize - 1) as usize;
                &t[yc * w..yc * w + w]
            });
            let orow = &mut dst[y * w..y * w + w];
            for (x, o) in orow.iter_mut().enumerate() {
                let mut s = half;
                for (i, &k) in weights.iter().enumerate() {
                    s += k * rows[i][x] as u16;
                }
                *o = (s >> shift) as u8;
            }
        }
    }
    grew
}

/// 3×3 Gaussian blur (binomial [1 2 1]/4 kernel), replicate borders.
pub fn gaussian_blur_3x3(img: &GrayImage) -> GrayImage {
    let mut tmp = GrayImage::new(0, 0);
    let mut out = GrayImage::new(0, 0);
    separable_blur_fixed_into(img, &[1, 2, 1], 2, &mut tmp, &mut out);
    out
}

/// 5×5 Gaussian blur (binomial [1 4 6 4 1]/16 kernel), replicate borders.
pub fn gaussian_blur_5x5(img: &GrayImage) -> GrayImage {
    let mut tmp = GrayImage::new(0, 0);
    let mut out = GrayImage::new(0, 0);
    gaussian_blur_5x5_into(img, &mut tmp, &mut out);
    out
}

/// [`gaussian_blur_5x5`] into caller-owned scratch images (`tmp` for
/// the horizontal pass, `out` for the result), bit-identical output.
/// Returns whether either buffer grew.
///
/// Dispatches to the widest proven-bit-exact implementation for the
/// process ([`crate::dispatch::level`]); use
/// [`gaussian_blur_5x5_into_level`] to pin a level explicitly.
pub fn gaussian_blur_5x5_into(img: &GrayImage, tmp: &mut GrayImage, out: &mut GrayImage) -> bool {
    gaussian_blur_5x5_into_level(img, tmp, out, crate::dispatch::level())
}

/// [`gaussian_blur_5x5_into`] at an explicit [`SimdLevel`]. All levels
/// produce bit-identical `tmp` and `out` planes.
pub fn gaussian_blur_5x5_into_level(
    img: &GrayImage,
    tmp: &mut GrayImage,
    out: &mut GrayImage,
    level: crate::dispatch::SimdLevel,
) -> bool {
    use crate::dispatch::SimdLevel;
    match level {
        SimdLevel::Scalar => gaussian_blur_5x5_into_scalar(img, tmp, out),
        SimdLevel::Swar => gaussian_blur_5x5_into_swar(img, tmp, out),
        SimdLevel::Sse2 => crate::simd::blur5x5_sse2(img, tmp, out),
        SimdLevel::Avx2 => crate::simd::blur5x5_avx2(img, tmp, out),
    }
}

/// The SWAR/fixed-point pass from PR 4, kept addressable as the
/// portable proof oracle the vector paths are verified against.
pub fn gaussian_blur_5x5_into_swar(
    img: &GrayImage,
    tmp: &mut GrayImage,
    out: &mut GrayImage,
) -> bool {
    separable_blur_fixed_into(img, &[1, 4, 6, 4, 1], 4, tmp, out)
}

/// [`gaussian_blur_5x5_into`] with the row work split across `bands`
/// scoped threads — an opt-in intra-run parallel mode for HD frames.
///
/// Output is bit-identical to the single-threaded path at every
/// dispatch level: the horizontal pass writes disjoint `tmp` row bands
/// (one thread each), a join barrier makes the full `tmp` plane
/// visible, and the vertical pass writes disjoint `out` row bands while
/// reading `tmp` shared — the same row arithmetic in a different
/// schedule, with no fault taps anywhere in the kernel. `bands <= 1`
/// (or a frame shorter than the band count) falls through to the plain
/// dispatched path.
pub fn gaussian_blur_5x5_into_bands(
    img: &GrayImage,
    tmp: &mut GrayImage,
    out: &mut GrayImage,
    bands: usize,
) -> bool {
    let (w, h) = (img.width(), img.height());
    let bands = bands.min(h).max(1);
    if bands <= 1 {
        return gaussian_blur_5x5_into(img, tmp, out);
    }
    let mut grew = tmp
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    grew |= out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if img.is_empty() {
        return grew;
    }
    let src = img.as_bytes();
    let rows_per = h.div_ceil(bands);
    {
        let tmp_bytes = tmp.as_bytes_mut();
        std::thread::scope(|s| {
            for (b, chunk) in tmp_bytes.chunks_mut(rows_per * w).enumerate() {
                let y0 = b * rows_per;
                s.spawn(move || {
                    for (i, trow) in chunk.chunks_mut(w).enumerate() {
                        let y = y0 + i;
                        crate::simd::hrow_dispatch(&src[y * w..y * w + w], trow);
                    }
                });
            }
        });
    }
    {
        let t = tmp.as_bytes();
        let dst = out.as_bytes_mut();
        std::thread::scope(|s| {
            for (b, chunk) in dst.chunks_mut(rows_per * w).enumerate() {
                let y0 = b * rows_per;
                s.spawn(move || {
                    for (i, orow) in chunk.chunks_mut(w).enumerate() {
                        let y = y0 + i;
                        let rows: [&[u8]; 5] = std::array::from_fn(|k| {
                            let yc =
                                (y as isize + k as isize - 2).clamp(0, h as isize - 1) as usize;
                            &t[yc * w..yc * w + w]
                        });
                        crate::simd::vrow_dispatch(&rows, orow);
                    }
                });
            }
        });
    }
    grew
}

/// Float reference oracle for [`gaussian_blur_5x5_into`]: the original
/// per-pixel `get_clamped` f64 path. Exposed so the kernel equivalence
/// harness and `kernel_bench` can verify and time the fixed-point pass
/// against it.
pub fn gaussian_blur_5x5_into_scalar(
    img: &GrayImage,
    tmp: &mut GrayImage,
    out: &mut GrayImage,
) -> bool {
    separable_blur_into_scalar(
        img,
        &[1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0],
        tmp,
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_rng::SplitMix64;

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayImage::from_fn(10, 10, |_, _| 128);
        assert_eq!(box_blur(&img, 2), img);
        assert_eq!(gaussian_blur_3x3(&img), img);
        assert_eq!(gaussian_blur_5x5(&img), img);
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let mut img = GrayImage::new(7, 7);
        img.set(3, 3, 255);
        let b = gaussian_blur_3x3(&img);
        let center = b.get(3, 3).unwrap();
        let neighbor = b.get(3, 2).unwrap();
        let corner = b.get(2, 2).unwrap();
        assert!(center > neighbor, "centre must dominate");
        assert!(neighbor > corner, "cross neighbours exceed corners");
        assert!(corner > 0, "energy spreads to the 3x3 ring");
        assert_eq!(b.get(0, 0), Some(0), "energy stays local");
    }

    #[test]
    fn blur_into_matches_allocating_blur() {
        let img = GrayImage::from_fn(11, 9, |x, y| (x * 23 + y * 5) as u8);
        let mut tmp = GrayImage::new(0, 0);
        let mut out = GrayImage::from_fn(2, 2, |_, _| 7);
        assert!(gaussian_blur_5x5_into(&img, &mut tmp, &mut out));
        assert_eq!(out, gaussian_blur_5x5(&img));
        assert!(!gaussian_blur_5x5_into(&img, &mut tmp, &mut out));
    }

    #[test]
    fn radius_zero_box_is_identity() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x * y * 9) as u8);
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn blur_reduces_variance() {
        let img = GrayImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let b = box_blur(&img, 1);
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.as_bytes()
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>()
                / im.as_bytes().len() as f64
        };
        assert!(var(&b) < var(&img) / 2.0);
    }

    #[test]
    fn blur_handles_empty_images() {
        let img = GrayImage::new(0, 0);
        assert!(box_blur(&img, 3).is_empty());
        assert!(gaussian_blur_5x5(&img).is_empty());
    }

    /// Every reachable integer sum rounds identically through the float
    /// funnel and the fixed-point shift, for both blur kernels.
    #[test]
    fn fixed_rounding_matches_float_for_all_sums() {
        for s in 0u32..=4080 {
            let float = saturate_u8(s as f64 / 16.0);
            let fixed = ((s + 8) >> 4) as u8;
            assert_eq!(fixed, float, "5x5 kernel sum {s}");
        }
        for s in 0u32..=1020 {
            let float = saturate_u8(s as f64 / 4.0);
            let fixed = ((s + 2) >> 2) as u8;
            assert_eq!(fixed, float, "3x3 kernel sum {s}");
        }
    }

    /// The float path's left-associated accumulation of dyadic products
    /// is exact: it lands on S/16 with no rounding for random windows.
    #[test]
    fn float_accumulation_of_dyadic_weights_is_exact() {
        let kernel = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];
        let ik = [1u32, 4, 6, 4, 1];
        let mut rng = SplitMix64::new(0x5EED_B10B);
        for _ in 0..10_000 {
            let vs: [u8; 5] = std::array::from_fn(|_| rng.gen_range(0u32..256) as u8);
            let mut acc = 0.0;
            let mut s = 0u32;
            for i in 0..5 {
                acc += kernel[i] * vs[i] as f64;
                s += ik[i] * vs[i] as u32;
            }
            assert_eq!(acc, s as f64 / 16.0, "window {vs:?}");
        }
    }

    /// The band-parallel blur is bit-identical to the single-threaded
    /// dispatched path (tmp plane included) for every band count,
    /// including bands > rows and band boundaries cutting the 5-row
    /// vertical window.
    #[test]
    fn band_parallel_blur_matches_single_threaded() {
        let mut rng = SplitMix64::new(0xBA2D_B10B);
        let (mut ta, mut oa) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        let (mut tb, mut ob) = (GrayImage::new(0, 0), GrayImage::new(0, 0));
        for &(w, h) in &[(1usize, 1usize), (7, 3), (40, 11), (64, 48), (33, 5)] {
            let img = GrayImage::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8);
            gaussian_blur_5x5_into(&img, &mut ta, &mut oa);
            for bands in [0usize, 1, 2, 3, 4, 7, 64] {
                gaussian_blur_5x5_into_bands(&img, &mut tb, &mut ob, bands);
                assert_eq!(oa, ob, "{w}x{h} bands={bands}");
                assert_eq!(ta, tb, "{w}x{h} bands={bands} tmp plane");
            }
        }
    }

    /// Randomized equivalence: fixed-point separable blur vs the float
    /// reference, over many sizes including ones narrower/shorter than
    /// the kernel (border clamping dominates there).
    #[test]
    fn fixed_blur_matches_scalar_reference_randomized() {
        let mut rng = SplitMix64::new(0xB1_0B5EED);
        let mut tmp_a = GrayImage::new(0, 0);
        let mut out_a = GrayImage::new(0, 0);
        let mut tmp_b = GrayImage::new(0, 0);
        let mut out_b = GrayImage::new(0, 0);
        for trial in 0..60 {
            let w = 1 + rng.gen_range(0usize..24);
            let h = 1 + rng.gen_range(0usize..24);
            let img = GrayImage::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8);
            gaussian_blur_5x5_into(&img, &mut tmp_a, &mut out_a);
            gaussian_blur_5x5_into_scalar(&img, &mut tmp_b, &mut out_b);
            assert_eq!(out_a, out_b, "trial {trial}: {w}x{h}");
            let fixed3 = gaussian_blur_3x3(&img);
            let mut t = GrayImage::new(0, 0);
            let mut o = GrayImage::new(0, 0);
            separable_blur_into_scalar(&img, &[0.25, 0.5, 0.25], &mut t, &mut o);
            assert_eq!(fixed3, o, "trial {trial} 3x3: {w}x{h}");
        }
    }
}
