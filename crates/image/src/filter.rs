//! Separable smoothing filters.
//!
//! ORB smooths the image before sampling BRIEF point pairs; the synthetic
//! terrain generator uses blurs to soften painted structure.

use crate::{saturate_u8, GrayImage};

/// Box blur with a `(2*radius+1)`² kernel, replicate borders.
///
/// Radius 0 returns a copy.
pub fn box_blur(img: &GrayImage, radius: usize) -> GrayImage {
    if radius == 0 || img.is_empty() {
        return img.clone();
    }
    let r = radius as isize;
    let norm = (2 * radius + 1) as f64;
    // Horizontal pass.
    let horiz = GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0;
        for dx in -r..=r {
            acc += img.get_clamped(x as isize + dx, y as isize) as f64;
        }
        saturate_u8(acc / norm)
    });
    // Vertical pass.
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0;
        for dy in -r..=r {
            acc += horiz.get_clamped(x as isize, y as isize + dy) as f64;
        }
        saturate_u8(acc / norm)
    })
}

fn separable_blur(img: &GrayImage, kernel: &[f64]) -> GrayImage {
    let mut tmp = GrayImage::new(0, 0);
    let mut out = GrayImage::new(0, 0);
    separable_blur_into(img, kernel, &mut tmp, &mut out);
    out
}

/// Separable convolution into caller-owned images: `tmp` holds the
/// horizontal pass, `out` the result. Same per-pixel `get_clamped`
/// taps and accumulation order as the allocating path, so the output
/// is bit-identical. Returns whether either buffer grew.
fn separable_blur_into(
    img: &GrayImage,
    kernel: &[f64],
    tmp: &mut GrayImage,
    out: &mut GrayImage,
) -> bool {
    let (w, h) = (img.width(), img.height());
    let mut grew = tmp
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    grew |= out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if img.is_empty() {
        return grew;
    }
    let r = (kernel.len() / 2) as isize;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in kernel.iter().enumerate() {
                acc += k * img.get_clamped(x as isize + i as isize - r, y as isize) as f64;
            }
            tmp.set(x, y, saturate_u8(acc));
        }
    }
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in kernel.iter().enumerate() {
                acc += k * tmp.get_clamped(x as isize, y as isize + i as isize - r) as f64;
            }
            out.set(x, y, saturate_u8(acc));
        }
    }
    grew
}

/// 3×3 Gaussian blur (binomial [1 2 1]/4 kernel), replicate borders.
pub fn gaussian_blur_3x3(img: &GrayImage) -> GrayImage {
    separable_blur(img, &[0.25, 0.5, 0.25])
}

/// 5×5 Gaussian blur (binomial [1 4 6 4 1]/16 kernel), replicate borders.
pub fn gaussian_blur_5x5(img: &GrayImage) -> GrayImage {
    separable_blur(
        img,
        &[1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0],
    )
}

/// [`gaussian_blur_5x5`] into caller-owned scratch images (`tmp` for
/// the horizontal pass, `out` for the result), bit-identical output.
/// Returns whether either buffer grew.
pub fn gaussian_blur_5x5_into(img: &GrayImage, tmp: &mut GrayImage, out: &mut GrayImage) -> bool {
    separable_blur_into(
        img,
        &[1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0],
        tmp,
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayImage::from_fn(10, 10, |_, _| 128);
        assert_eq!(box_blur(&img, 2), img);
        assert_eq!(gaussian_blur_3x3(&img), img);
        assert_eq!(gaussian_blur_5x5(&img), img);
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let mut img = GrayImage::new(7, 7);
        img.set(3, 3, 255);
        let b = gaussian_blur_3x3(&img);
        let center = b.get(3, 3).unwrap();
        let neighbor = b.get(3, 2).unwrap();
        let corner = b.get(2, 2).unwrap();
        assert!(center > neighbor, "centre must dominate");
        assert!(neighbor > corner, "cross neighbours exceed corners");
        assert!(corner > 0, "energy spreads to the 3x3 ring");
        assert_eq!(b.get(0, 0), Some(0), "energy stays local");
    }

    #[test]
    fn blur_into_matches_allocating_blur() {
        let img = GrayImage::from_fn(11, 9, |x, y| (x * 23 + y * 5) as u8);
        let mut tmp = GrayImage::new(0, 0);
        let mut out = GrayImage::from_fn(2, 2, |_, _| 7);
        assert!(gaussian_blur_5x5_into(&img, &mut tmp, &mut out));
        assert_eq!(out, gaussian_blur_5x5(&img));
        assert!(!gaussian_blur_5x5_into(&img, &mut tmp, &mut out));
    }

    #[test]
    fn radius_zero_box_is_identity() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x * y * 9) as u8);
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn blur_reduces_variance() {
        let img = GrayImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let b = box_blur(&img, 1);
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.as_bytes()
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>()
                / im.as_bytes().len() as f64
        };
        assert!(var(&b) < var(&img) / 2.0);
    }

    #[test]
    fn blur_handles_empty_images() {
        let img = GrayImage::new(0, 0);
        assert!(box_blur(&img, 3).is_empty());
        assert!(gaussian_blur_5x5(&img).is_empty());
    }
}
