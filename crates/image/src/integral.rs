//! Integral images (summed-area tables).
//!
//! Used by the ORB orientation step to compute patch moments in constant
//! time per query.

use crate::GrayImage;

/// A summed-area table over a [`GrayImage`].
///
/// `sum(x0, y0, x1, y1)` returns the inclusive-exclusive rectangle sum
/// `Σ img[y, x] for x in x0..x1, y in y0..y1` in O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) x (height+1)` table; entry `(x, y)` holds the sum of all
    /// pixels strictly above and left of `(x, y)`.
    table: Vec<u64>,
}

impl IntegralImage {
    /// Build the table in one pass over the image.
    pub fn new(img: &GrayImage) -> Self {
        let w = img.width();
        let h = img.height();
        let tw = w + 1;
        let mut table = vec![0u64; tw * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0u64;
            let row = img.row(y);
            for x in 0..w {
                row_sum += row[x] as u64;
                table[(y + 1) * tw + (x + 1)] = table[y * tw + (x + 1)] + row_sum;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }

    /// Width of the source image.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the source image.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum over the half-open rectangle `[x0, x1) x [y0, y1)`.
    ///
    /// Returns `None` if the rectangle is inverted or escapes the image.
    pub fn sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> Option<u64> {
        if x1 < x0 || y1 < y0 || x1 > self.width || y1 > self.height {
            return None;
        }
        let tw = self.width + 1;
        let a = self.table[y0 * tw + x0];
        let b = self.table[y0 * tw + x1];
        let c = self.table[y1 * tw + x0];
        let d = self.table[y1 * tw + x1];
        Some(d + a - b - c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_sum(img: &GrayImage, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        let mut acc = 0u64;
        for y in y0..y1 {
            for x in x0..x1 {
                acc += img.get(x, y).unwrap() as u64;
            }
        }
        acc
    }

    #[test]
    fn matches_brute_force_on_all_rectangles() {
        let img = GrayImage::from_fn(7, 5, |x, y| ((x * 31 + y * 17) % 251) as u8);
        let it = IntegralImage::new(&img);
        for y0 in 0..=5 {
            for y1 in y0..=5 {
                for x0 in 0..=7 {
                    for x1 in x0..=7 {
                        assert_eq!(
                            it.sum(x0, y0, x1, y1),
                            Some(brute_sum(&img, x0, y0, x1, y1)),
                            "rect ({x0},{y0})..({x1},{y1})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_range_rects_are_rejected() {
        let img = GrayImage::new(4, 4);
        let it = IntegralImage::new(&img);
        assert_eq!(it.sum(0, 0, 5, 1), None);
        assert_eq!(it.sum(0, 0, 1, 5), None);
        assert_eq!(it.sum(3, 0, 2, 1), None);
    }

    #[test]
    fn empty_rects_sum_to_zero() {
        let img = GrayImage::from_fn(3, 3, |_, _| 9);
        let it = IntegralImage::new(&img);
        assert_eq!(it.sum(1, 1, 1, 1), Some(0));
        assert_eq!(it.sum(0, 2, 3, 2), Some(0));
    }

    #[test]
    fn full_image_sum() {
        let img = GrayImage::from_fn(4, 4, |_, _| 255);
        let it = IntegralImage::new(&img);
        assert_eq!(it.sum(0, 0, 4, 4), Some(255 * 16));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use vs_rng::SplitMix64;

    /// Integral-image rectangle sums always equal brute-force sums,
    /// across a deterministic sweep of random images and query rects.
    #[test]
    fn integral_equals_brute() {
        let mut rng = SplitMix64::new(0x1a7e6a1);
        for case in 0..128u64 {
            let w: usize = rng.gen_range(1..12);
            let h: usize = rng.gen_range(1..12);
            let pixels: Vec<u8> = (0..144).map(|_| rng.gen_range(0u8..255)).collect();
            let img = GrayImage::from_fn(w, h, |x, y| pixels[(y * 12 + x) % pixels.len()]);
            let it = IntegralImage::new(&img);
            let (a, b) = (rng.gen_range(0usize..12), rng.gen_range(0usize..12));
            let (c, d) = (rng.gen_range(0usize..12), rng.gen_range(0usize..12));
            let (x0, x1) = (a.min(w), b.min(w));
            let (y0, y1) = (c.min(h), d.min(h));
            let (x0, x1) = (x0.min(x1), x0.max(x1));
            let (y0, y1) = (y0.min(y1), y0.max(y1));
            let mut brute = 0u64;
            for y in y0..y1 {
                for x in x0..x1 {
                    brute += img.get(x, y).unwrap() as u64;
                }
            }
            assert_eq!(it.sum(x0, y0, x1, y1), Some(brute), "case {case}");
        }
    }
}
