//! Image containers and basic processing for the video-summarization
//! pipeline.
//!
//! This crate replaces the subset of OpenCV's `core` and `imgproc` the
//! paper's application relies on: 8-bit grayscale and RGB images with
//! checked accessors, PPM/PGM I/O, drawing primitives, separable blurs,
//! integral images and pyramids.
//!
//! All pixel accessors are *checked*: `get`-style methods return `Option`
//! so callers in the fault-injected pipeline can translate out-of-bounds
//! accesses (from corrupted indices) into simulated segfaults instead of
//! panicking.
//!
//! # Example
//!
//! ```
//! use vs_image::{GrayImage, RgbImage};
//!
//! let mut g = GrayImage::new(8, 4);
//! g.set(3, 2, 200);
//! assert_eq!(g.get(3, 2), Some(200));
//! assert_eq!(g.get(99, 0), None);
//! let rgb = RgbImage::from_gray(&g);
//! assert_eq!(rgb.get(3, 2), Some([200, 200, 200]));
//! ```

pub mod dispatch;
mod draw;
mod filter;
mod gray;
mod integral;
mod ppm;
mod pyramid;
mod rgb;
mod simd;

pub use dispatch::SimdLevel;
pub use draw::{draw_disc_gray, draw_line_gray, fill_rect_gray, fill_rect_rgb};
pub use filter::{
    box_blur, gaussian_blur_3x3, gaussian_blur_5x5, gaussian_blur_5x5_into,
    gaussian_blur_5x5_into_bands, gaussian_blur_5x5_into_level, gaussian_blur_5x5_into_scalar,
    gaussian_blur_5x5_into_swar,
};
pub use gray::GrayImage;
pub use integral::IntegralImage;
pub use ppm::{read_pgm, read_ppm, write_pgm, write_ppm, PnmError};
pub use pyramid::{
    downsample_half, downsample_half_into, downsample_half_into_level, downsample_half_into_scalar,
    downsample_half_into_swar, Pyramid,
};
pub use rgb::RgbImage;

/// Hard cap on pixels per image (256 Mpx).
///
/// Mirrors the allocation sanity checks in native image libraries: a
/// fault-corrupted dimension that would blow past this cap is an internal
/// constraint violation (the paper's "abort" crash cause), not an
/// allocation attempt.
pub const MAX_PIXELS: usize = 1 << 28;

/// Saturate an `f64` to the 8-bit pixel range, mapping NaN to 0.
///
/// This is the Rust equivalent of OpenCV's `saturate_cast<uchar>`, the
/// conversion the paper credits for masking 99.7% of FPR faults: float
/// pixel math re-enters 8-bit storage through this clamp.
#[inline]
pub fn saturate_u8(v: f64) -> u8 {
    // `as` saturates and maps NaN to 0 per Rust float->int cast semantics.
    v.round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturate_clamps_and_rounds() {
        assert_eq!(saturate_u8(-5.0), 0);
        assert_eq!(saturate_u8(0.4), 0);
        assert_eq!(saturate_u8(0.6), 1);
        assert_eq!(saturate_u8(254.7), 255);
        assert_eq!(saturate_u8(1e300), 255);
        assert_eq!(saturate_u8(f64::NAN), 0);
        assert_eq!(saturate_u8(f64::NEG_INFINITY), 0);
        assert_eq!(saturate_u8(f64::INFINITY), 255);
    }

    /// The masking property the paper measures: small float perturbations
    /// vanish through saturation.
    #[test]
    fn saturation_masks_small_float_perturbations() {
        let v = 200.0f64;
        let perturbed = f64::from_bits(v.to_bits() ^ 1); // lowest mantissa bit
        assert_eq!(saturate_u8(v), saturate_u8(perturbed));
    }
}
