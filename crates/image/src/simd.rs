//! Explicit SSE2/AVX2 kernels for the separable blur and the pyramid
//! downsample — the only `unsafe` code in the image crate (and, with
//! the sibling `simd.rs` modules, in the whole workspace outside the
//! bench allocator probes).
//!
//! Both kernels are pure integer pipelines with no fault taps, so the
//! vector paths are usable unconditionally — inside and outside
//! injection sessions — as long as they are bit-exact, which they are
//! by construction: every vector lane computes the *same* u16
//! fixed-point arithmetic as the SWAR path (`half + Σ kᵢ·vᵢ` then
//! `>> shift` for the blur; `(a+b+c+d+2) >> 2` for the downsample),
//! proven against the scalar oracles in the tests. `_mm_avg_epu8` is
//! deliberately not used for the downsample: its per-pair rounding
//! (`avg(avg(a,b), avg(c,d))`) biases upward relative to the exact
//! 4-sum average and would break bit-exactness.
//!
//! The blur additionally tiles for cache locality: instead of a full
//! horizontal pass over the image followed by a full vertical pass
//! (which walks the whole `tmp` plane twice — at 1080p that is ~2 MB,
//! far past L2), the horizontal rows are produced *on demand*, two rows
//! ahead of the vertical consumer, so the working set is a rolling
//! five-row window. `tmp` still ends up holding the complete horizontal
//! pass (each row is computed exactly once), preserving the buffer
//! contract of [`crate::gaussian_blur_5x5_into`].
//!
//! Safety discipline: `#![deny(unsafe_op_in_unsafe_fn)]`, raw-pointer
//! loads/stores are the only unsafe operations, and every one sits
//! behind an explicit bounds argument in a `// SAFETY:` comment. The
//! AVX2 entry points assert `is_x86_feature_detected!("avx2")` before
//! dispatching into `#[target_feature]` code.
#![deny(unsafe_op_in_unsafe_fn)]

use crate::GrayImage;

/// The 5-tap binomial weights and rounding constant shared with the
/// SWAR path (`[1, 4, 6, 4, 1] / 16`).
const HALF5: u16 = 8;
const SHIFT5: u32 = 4;

/// One blurred pixel with clamped (replicate-border) window reads —
/// identical arithmetic to the fixed-point path's border lanes.
#[inline]
fn hpix_clamped(src: &[u8], x: usize) -> u8 {
    const W: [u16; 5] = [1, 4, 6, 4, 1];
    let w = src.len() as isize;
    let mut s = HALF5;
    for (i, &k) in W.iter().enumerate() {
        let xi = (x as isize + i as isize - 2).clamp(0, w - 1) as usize;
        s += k * src[xi] as u16;
    }
    (s >> SHIFT5) as u8
}

/// One vertical-pass pixel from five pre-clamped rows.
#[inline]
fn vpix(rows: &[&[u8]; 5], x: usize) -> u8 {
    let s = HALF5
        + rows[0][x] as u16
        + 4 * rows[1][x] as u16
        + 6 * rows[2][x] as u16
        + 4 * rows[3][x] as u16
        + rows[4][x] as u16;
    (s >> SHIFT5) as u8
}

/// One downsampled pixel: exact 2×2 block average with round-half-up.
#[inline]
fn dpix(row0: &[u8], row1: &[u8], x: usize) -> u8 {
    let acc =
        row0[2 * x] as u32 + row0[2 * x + 1] as u32 + row1[2 * x] as u32 + row1[2 * x + 1] as u32;
    ((acc + 2) >> 2) as u8
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{dpix, hpix_clamped, vpix, HALF5, SHIFT5};
    use std::arch::x86_64::*;

    /// `(half + a + 4b + 6c + 4d + e) >> 4` on eight u16 lanes. Max lane
    /// value before the shift is `255·16 + 8 = 4088 < 2¹⁵`: no wrap, no
    /// sign issues, and after the shift every lane is ≤ 255 so the
    /// caller's `packus` saturation is a no-op.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn wsum16(a: __m128i, b: __m128i, c: __m128i, d: __m128i, e: __m128i) -> __m128i {
        let bd4 = _mm_slli_epi16(_mm_add_epi16(b, d), 2);
        let c6 = _mm_add_epi16(_mm_slli_epi16(c, 2), _mm_slli_epi16(c, 1));
        let s = _mm_add_epi16(_mm_add_epi16(a, e), _mm_add_epi16(bd4, c6));
        _mm_srli_epi16(
            _mm_add_epi16(s, _mm_set1_epi16(HALF5 as i16)),
            SHIFT5 as i32,
        )
    }

    /// AVX2 twin of [`wsum16`] on sixteen u16 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn wsum16_avx2(a: __m256i, b: __m256i, c: __m256i, d: __m256i, e: __m256i) -> __m256i {
        let bd4 = _mm256_slli_epi16(_mm256_add_epi16(b, d), 2);
        let c6 = _mm256_add_epi16(_mm256_slli_epi16(c, 2), _mm256_slli_epi16(c, 1));
        let s = _mm256_add_epi16(_mm256_add_epi16(a, e), _mm256_add_epi16(bd4, c6));
        _mm256_srli_epi16(
            _mm256_add_epi16(s, _mm256_set1_epi16(HALF5 as i16)),
            SHIFT5 as i32,
        )
    }

    /// Horizontal 5-tap pass over one row, 16 pixels per iteration.
    ///
    /// Lane order: `unpacklo`/`unpackhi` split bytes 0–7 / 8–15 into u16
    /// lanes and `packus(lo, hi)` reassembles them in the same order, so
    /// output byte `x + i` is the window sum at `x + i` exactly.
    #[target_feature(enable = "sse2")]
    pub(super) fn hrow_sse2(src: &[u8], dst: &mut [u8]) {
        let w = src.len();
        debug_assert_eq!(dst.len(), w);
        let mut x = 0usize;
        if w >= 20 {
            dst[0] = hpix_clamped(src, 0);
            dst[1] = hpix_clamped(src, 1);
            x = 2;
            let zero = _mm_setzero_si128();
            while x + 18 <= w {
                // SAFETY: the five loads cover src[x-2 ..= x+17]; x ≥ 2
                // and x + 18 ≤ w keep every byte in bounds, and the
                // store covers dst[x .. x+16] ⊆ dst[..w].
                unsafe {
                    let p = src.as_ptr();
                    let a = _mm_loadu_si128(p.add(x - 2).cast());
                    let b = _mm_loadu_si128(p.add(x - 1).cast());
                    let c = _mm_loadu_si128(p.add(x).cast());
                    let d = _mm_loadu_si128(p.add(x + 1).cast());
                    let e = _mm_loadu_si128(p.add(x + 2).cast());
                    let lo = wsum16(
                        _mm_unpacklo_epi8(a, zero),
                        _mm_unpacklo_epi8(b, zero),
                        _mm_unpacklo_epi8(c, zero),
                        _mm_unpacklo_epi8(d, zero),
                        _mm_unpacklo_epi8(e, zero),
                    );
                    let hi = wsum16(
                        _mm_unpackhi_epi8(a, zero),
                        _mm_unpackhi_epi8(b, zero),
                        _mm_unpackhi_epi8(c, zero),
                        _mm_unpackhi_epi8(d, zero),
                        _mm_unpackhi_epi8(e, zero),
                    );
                    _mm_storeu_si128(dst.as_mut_ptr().add(x).cast(), _mm_packus_epi16(lo, hi));
                }
                x += 16;
            }
        }
        while x < w {
            dst[x] = hpix_clamped(src, x);
            x += 1;
        }
    }

    /// AVX2 horizontal pass, 32 pixels per iteration. The 256-bit
    /// `unpack`/`packus` pairs are both lane-local and complementary, so
    /// byte order is preserved end to end with no cross-lane permute.
    #[target_feature(enable = "avx2")]
    pub(super) fn hrow_avx2(src: &[u8], dst: &mut [u8]) {
        let w = src.len();
        debug_assert_eq!(dst.len(), w);
        let mut x = 0usize;
        if w >= 36 {
            dst[0] = hpix_clamped(src, 0);
            dst[1] = hpix_clamped(src, 1);
            x = 2;
            let zero = _mm256_setzero_si256();
            while x + 34 <= w {
                // SAFETY: the five loads cover src[x-2 ..= x+33]; x ≥ 2
                // and x + 34 ≤ w keep every byte in bounds, and the
                // store covers dst[x .. x+32] ⊆ dst[..w].
                unsafe {
                    let p = src.as_ptr();
                    let a = _mm256_loadu_si256(p.add(x - 2).cast());
                    let b = _mm256_loadu_si256(p.add(x - 1).cast());
                    let c = _mm256_loadu_si256(p.add(x).cast());
                    let d = _mm256_loadu_si256(p.add(x + 1).cast());
                    let e = _mm256_loadu_si256(p.add(x + 2).cast());
                    let lo = wsum16_avx2(
                        _mm256_unpacklo_epi8(a, zero),
                        _mm256_unpacklo_epi8(b, zero),
                        _mm256_unpacklo_epi8(c, zero),
                        _mm256_unpacklo_epi8(d, zero),
                        _mm256_unpacklo_epi8(e, zero),
                    );
                    let hi = wsum16_avx2(
                        _mm256_unpackhi_epi8(a, zero),
                        _mm256_unpackhi_epi8(b, zero),
                        _mm256_unpackhi_epi8(c, zero),
                        _mm256_unpackhi_epi8(d, zero),
                        _mm256_unpackhi_epi8(e, zero),
                    );
                    _mm256_storeu_si256(
                        dst.as_mut_ptr().add(x).cast(),
                        _mm256_packus_epi16(lo, hi),
                    );
                }
                x += 32;
            }
        }
        while x < w {
            dst[x] = hpix_clamped(src, x);
            x += 1;
        }
    }

    /// Vertical 5-tap pass for one output row from five pre-clamped
    /// source rows, 16 pixels per iteration.
    #[target_feature(enable = "sse2")]
    pub(super) fn vrow_sse2(rows: &[&[u8]; 5], dst: &mut [u8]) {
        let w = dst.len();
        debug_assert!(rows.iter().all(|r| r.len() == w));
        let zero = _mm_setzero_si128();
        let mut x = 0usize;
        while x + 16 <= w {
            // SAFETY: each load reads rows[i][x .. x+16] and the store
            // writes dst[x .. x+16]; x + 16 ≤ w bounds both, and every
            // row slice has length w (asserted above).
            unsafe {
                let v: [__m128i; 5] = [
                    _mm_loadu_si128(rows[0].as_ptr().add(x).cast()),
                    _mm_loadu_si128(rows[1].as_ptr().add(x).cast()),
                    _mm_loadu_si128(rows[2].as_ptr().add(x).cast()),
                    _mm_loadu_si128(rows[3].as_ptr().add(x).cast()),
                    _mm_loadu_si128(rows[4].as_ptr().add(x).cast()),
                ];
                let lo = wsum16(
                    _mm_unpacklo_epi8(v[0], zero),
                    _mm_unpacklo_epi8(v[1], zero),
                    _mm_unpacklo_epi8(v[2], zero),
                    _mm_unpacklo_epi8(v[3], zero),
                    _mm_unpacklo_epi8(v[4], zero),
                );
                let hi = wsum16(
                    _mm_unpackhi_epi8(v[0], zero),
                    _mm_unpackhi_epi8(v[1], zero),
                    _mm_unpackhi_epi8(v[2], zero),
                    _mm_unpackhi_epi8(v[3], zero),
                    _mm_unpackhi_epi8(v[4], zero),
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(x).cast(), _mm_packus_epi16(lo, hi));
            }
            x += 16;
        }
        while x < w {
            dst[x] = vpix(rows, x);
            x += 1;
        }
    }

    /// AVX2 vertical pass, 32 pixels per iteration.
    #[target_feature(enable = "avx2")]
    pub(super) fn vrow_avx2(rows: &[&[u8]; 5], dst: &mut [u8]) {
        let w = dst.len();
        debug_assert!(rows.iter().all(|r| r.len() == w));
        let zero = _mm256_setzero_si256();
        let mut x = 0usize;
        while x + 32 <= w {
            // SAFETY: each load reads rows[i][x .. x+32] and the store
            // writes dst[x .. x+32]; x + 32 ≤ w bounds both, and every
            // row slice has length w (asserted above).
            unsafe {
                let v: [__m256i; 5] = [
                    _mm256_loadu_si256(rows[0].as_ptr().add(x).cast()),
                    _mm256_loadu_si256(rows[1].as_ptr().add(x).cast()),
                    _mm256_loadu_si256(rows[2].as_ptr().add(x).cast()),
                    _mm256_loadu_si256(rows[3].as_ptr().add(x).cast()),
                    _mm256_loadu_si256(rows[4].as_ptr().add(x).cast()),
                ];
                let lo = wsum16_avx2(
                    _mm256_unpacklo_epi8(v[0], zero),
                    _mm256_unpacklo_epi8(v[1], zero),
                    _mm256_unpacklo_epi8(v[2], zero),
                    _mm256_unpacklo_epi8(v[3], zero),
                    _mm256_unpacklo_epi8(v[4], zero),
                );
                let hi = wsum16_avx2(
                    _mm256_unpackhi_epi8(v[0], zero),
                    _mm256_unpackhi_epi8(v[1], zero),
                    _mm256_unpackhi_epi8(v[2], zero),
                    _mm256_unpackhi_epi8(v[3], zero),
                    _mm256_unpackhi_epi8(v[4], zero),
                );
                _mm256_storeu_si256(dst.as_mut_ptr().add(x).cast(), _mm256_packus_epi16(lo, hi));
            }
            x += 32;
        }
        while x < w {
            dst[x] = vpix(rows, x);
            x += 1;
        }
    }

    /// Sum the 2×2 block columns of two source rows into u16 lanes:
    /// even bytes + odd bytes of each 16-byte load, both rows. Max lane
    /// value `4·255 = 1020 < 2¹⁵`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn pairsum16(v0: __m128i, v1: __m128i) -> __m128i {
        let lo_mask = _mm_set1_epi16(0x00FF);
        let e0 = _mm_and_si128(v0, lo_mask);
        let o0 = _mm_srli_epi16(v0, 8);
        let e1 = _mm_and_si128(v1, lo_mask);
        let o1 = _mm_srli_epi16(v1, 8);
        _mm_add_epi16(_mm_add_epi16(e0, o0), _mm_add_epi16(e1, o1))
    }

    /// AVX2 twin of [`pairsum16`].
    #[inline]
    #[target_feature(enable = "avx2")]
    fn pairsum16_avx2(v0: __m256i, v1: __m256i) -> __m256i {
        let lo_mask = _mm256_set1_epi16(0x00FF);
        let e0 = _mm256_and_si256(v0, lo_mask);
        let o0 = _mm256_srli_epi16(v0, 8);
        let e1 = _mm256_and_si256(v1, lo_mask);
        let o1 = _mm256_srli_epi16(v1, 8);
        _mm256_add_epi16(_mm256_add_epi16(e0, o0), _mm256_add_epi16(e1, o1))
    }

    /// One downsampled row (16 output pixels / 64 input bytes per
    /// iteration): exact `(a+b+c+d+2) >> 2` in u16 lanes.
    #[target_feature(enable = "sse2")]
    pub(super) fn drow_sse2(row0: &[u8], row1: &[u8], dst: &mut [u8]) {
        let w = dst.len();
        debug_assert!(row0.len() >= 2 * w && row1.len() >= 2 * w);
        let two = _mm_set1_epi16(2);
        let mut x = 0usize;
        while x + 16 <= w {
            // SAFETY: the four loads read rowN[2x .. 2x+32]; x + 16 ≤ w
            // gives 2x + 32 ≤ 2w ≤ rowN.len(), and the store writes
            // dst[x .. x+16] ⊆ dst[..w].
            unsafe {
                let p0 = row0.as_ptr().add(2 * x);
                let p1 = row1.as_ptr().add(2 * x);
                let a0 = _mm_loadu_si128(p0.cast());
                let a1 = _mm_loadu_si128(p0.add(16).cast());
                let b0 = _mm_loadu_si128(p1.cast());
                let b1 = _mm_loadu_si128(p1.add(16).cast());
                let lo = _mm_srli_epi16(_mm_add_epi16(pairsum16(a0, b0), two), 2);
                let hi = _mm_srli_epi16(_mm_add_epi16(pairsum16(a1, b1), two), 2);
                _mm_storeu_si128(dst.as_mut_ptr().add(x).cast(), _mm_packus_epi16(lo, hi));
            }
            x += 16;
        }
        while x < w {
            dst[x] = dpix(row0, row1, x);
            x += 1;
        }
    }

    /// AVX2 downsampled row, 32 output pixels per iteration. The
    /// 256-bit `packus` interleaves 64-bit quarters across lanes
    /// (`[A₀₋₇, B₀₋₇ | A₈₋₁₅, B₈₋₁₅]`); `permute4x64(0b11_01_10_00)`
    /// restores ascending output order.
    #[target_feature(enable = "avx2")]
    pub(super) fn drow_avx2(row0: &[u8], row1: &[u8], dst: &mut [u8]) {
        let w = dst.len();
        debug_assert!(row0.len() >= 2 * w && row1.len() >= 2 * w);
        let two = _mm256_set1_epi16(2);
        let mut x = 0usize;
        while x + 32 <= w {
            // SAFETY: the four loads read rowN[2x .. 2x+64]; x + 32 ≤ w
            // gives 2x + 64 ≤ 2w ≤ rowN.len(), and the store writes
            // dst[x .. x+32] ⊆ dst[..w].
            unsafe {
                let p0 = row0.as_ptr().add(2 * x);
                let p1 = row1.as_ptr().add(2 * x);
                let a0 = _mm256_loadu_si256(p0.cast());
                let a1 = _mm256_loadu_si256(p0.add(32).cast());
                let b0 = _mm256_loadu_si256(p1.cast());
                let b1 = _mm256_loadu_si256(p1.add(32).cast());
                let lo = _mm256_srli_epi16(_mm256_add_epi16(pairsum16_avx2(a0, b0), two), 2);
                let hi = _mm256_srli_epi16(_mm256_add_epi16(pairsum16_avx2(a1, b1), two), 2);
                let packed = _mm256_packus_epi16(lo, hi);
                let ordered = _mm256_permute4x64_epi64(packed, 0b11_01_10_00);
                _mm256_storeu_si256(dst.as_mut_ptr().add(x).cast(), ordered);
            }
            x += 32;
        }
        while x < w {
            dst[x] = dpix(row0, row1, x);
            x += 1;
        }
    }
}

/// Which vector row kernels to run inside this module.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Width {
    Sse2,
    Avx2,
}

/// Run one horizontal blur row at the requested width.
fn hrow(src: &[u8], dst: &mut [u8], width: Width) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is part of baseline x86-64; Width::Avx2 is only
    // constructed behind an `is_x86_feature_detected!("avx2")` check.
    unsafe {
        match width {
            Width::Sse2 => x86::hrow_sse2(src, dst),
            Width::Avx2 => x86::hrow_avx2(src, dst),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = width;
        for x in 0..src.len() {
            dst[x] = hpix_clamped(src, x);
        }
    }
}

/// Run one vertical blur row at the requested width.
fn vrow(rows: &[&[u8]; 5], dst: &mut [u8], width: Width) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: as in [`hrow`].
    unsafe {
        match width {
            Width::Sse2 => x86::vrow_sse2(rows, dst),
            Width::Avx2 => x86::vrow_avx2(rows, dst),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = width;
        for x in 0..dst.len() {
            dst[x] = vpix(rows, x);
        }
    }
}

/// Run one downsample row at the requested width.
fn drow(row0: &[u8], row1: &[u8], dst: &mut [u8], width: Width) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: as in [`hrow`].
    unsafe {
        match width {
            Width::Sse2 => x86::drow_sse2(row0, row1, dst),
            Width::Avx2 => x86::drow_avx2(row0, row1, dst),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = width;
        for x in 0..dst.len() {
            dst[x] = dpix(row0, row1, x);
        }
    }
}

fn blur5x5_width(img: &GrayImage, tmp: &mut GrayImage, out: &mut GrayImage, width: Width) -> bool {
    let (w, h) = (img.width(), img.height());
    let mut grew = tmp
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    grew |= out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if img.is_empty() {
        return grew;
    }
    let src = img.as_bytes();
    let tmp_bytes = tmp.as_bytes_mut();
    let dst = out.as_bytes_mut();
    // Fused rolling passes: produce horizontal row y+2 just before the
    // vertical pass consumes rows y-2..=y+2, keeping a five-row window
    // hot in cache. Every tmp row is written exactly once, so tmp ends
    // up identical to a full horizontal pass.
    let mut next_h = 0usize;
    for y in 0..h {
        let need = (y + 2).min(h - 1);
        while next_h <= need {
            let (s, t) = (
                &src[next_h * w..next_h * w + w],
                &mut tmp_bytes[next_h * w..next_h * w + w],
            );
            hrow(s, t, width);
            next_h += 1;
        }
        let t: &[u8] = tmp_bytes;
        let rows: [&[u8]; 5] = std::array::from_fn(|i| {
            let yc = (y as isize + i as isize - 2).clamp(0, h as isize - 1) as usize;
            &t[yc * w..yc * w + w]
        });
        vrow(&rows, &mut dst[y * w..y * w + w], width);
    }
    grew
}

fn downsample_width(img: &GrayImage, out: &mut GrayImage, width: Width) -> bool {
    let w = img.width() / 2;
    let h = img.height() / 2;
    let grew = out
        .try_reset(w, h)
        .expect("image dimensions exceed MAX_PIXELS");
    if w == 0 || h == 0 {
        return grew;
    }
    let src = img.as_bytes();
    let src_w = img.width();
    let dst = out.as_bytes_mut();
    for (y, dst_row) in dst.chunks_exact_mut(w).enumerate() {
        let row0 = &src[2 * y * src_w..2 * y * src_w + src_w];
        let row1 = &src[(2 * y + 1) * src_w..(2 * y + 1) * src_w + src_w];
        drow(row0, row1, dst_row, width);
    }
    grew
}

/// SSE2 [`crate::gaussian_blur_5x5_into`]: bit-identical output and
/// buffer contract, vectorized rows with a cache-tiled pass structure.
pub fn blur5x5_sse2(img: &GrayImage, tmp: &mut GrayImage, out: &mut GrayImage) -> bool {
    blur5x5_width(img, tmp, out, Width::Sse2)
}

/// AVX2 [`crate::gaussian_blur_5x5_into`].
///
/// # Panics
///
/// Panics when the host lacks AVX2 — callers dispatch through
/// [`crate::dispatch::level`], which never selects an unavailable level.
pub fn blur5x5_avx2(img: &GrayImage, tmp: &mut GrayImage, out: &mut GrayImage) -> bool {
    assert!(
        crate::dispatch::SimdLevel::Avx2.available(),
        "blur5x5_avx2 requires AVX2"
    );
    blur5x5_width(img, tmp, out, Width::Avx2)
}

/// SSE2 [`crate::downsample_half_into`]: bit-identical output.
pub fn downsample_half_sse2(img: &GrayImage, out: &mut GrayImage) -> bool {
    downsample_width(img, out, Width::Sse2)
}

/// AVX2 [`crate::downsample_half_into`].
///
/// # Panics
///
/// Panics when the host lacks AVX2 (see [`blur5x5_avx2`]).
pub fn downsample_half_avx2(img: &GrayImage, out: &mut GrayImage) -> bool {
    assert!(
        crate::dispatch::SimdLevel::Avx2.available(),
        "downsample_half_avx2 requires AVX2"
    );
    downsample_width(img, out, Width::Avx2)
}

/// Dispatch-level row kernels for the band-parallel blur: one
/// horizontal row at the process dispatch level (vector levels fall
/// back to the identical-output scalar rows elsewhere).
pub(crate) fn hrow_dispatch(src: &[u8], dst: &mut [u8]) {
    match crate::dispatch::level() {
        crate::dispatch::SimdLevel::Avx2 => hrow(src, dst, Width::Avx2),
        crate::dispatch::SimdLevel::Sse2 => hrow(src, dst, Width::Sse2),
        _ => {
            for (x, d) in dst.iter_mut().enumerate().take(src.len()) {
                *d = hpix_clamped(src, x);
            }
        }
    }
}

/// One vertical row at the process dispatch level.
pub(crate) fn vrow_dispatch(rows: &[&[u8]; 5], dst: &mut [u8]) {
    match crate::dispatch::level() {
        crate::dispatch::SimdLevel::Avx2 => vrow(rows, dst, Width::Avx2),
        crate::dispatch::SimdLevel::Sse2 => vrow(rows, dst, Width::Sse2),
        _ => {
            for (x, d) in dst.iter_mut().enumerate() {
                *d = vpix(rows, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::SimdLevel;
    use crate::{downsample_half_into_swar, gaussian_blur_5x5_into_swar};
    use vs_rng::SplitMix64;

    fn random_image(rng: &mut SplitMix64, w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8)
    }

    /// Every compiled vector blur path reproduces the SWAR pass (itself
    /// proven against the f64 oracle) bit-for-bit, across sizes that
    /// exercise borders, vector tails, and sub-vector rows.
    #[test]
    fn vector_blur_matches_swar_across_sizes() {
        let mut rng = SplitMix64::new(0x51_4D_D0);
        let (mut ta, mut oa) = (GrayImage::default(), GrayImage::default());
        let (mut tb, mut ob) = (GrayImage::default(), GrayImage::default());
        let sizes: &[(usize, usize)] = &[
            (1, 1),
            (3, 5),
            (15, 4),
            (16, 16),
            (17, 3),
            (19, 19),
            (20, 6),
            (33, 9),
            (34, 34),
            (35, 7),
            (64, 48),
            (127, 31),
        ];
        for &(w, h) in sizes {
            let img = random_image(&mut rng, w, h);
            gaussian_blur_5x5_into_swar(&img, &mut ta, &mut oa);
            blur5x5_sse2(&img, &mut tb, &mut ob);
            assert_eq!(oa, ob, "sse2 blur {w}x{h}");
            assert_eq!(ta, tb, "sse2 blur tmp plane {w}x{h}");
            if SimdLevel::Avx2.available() {
                blur5x5_avx2(&img, &mut tb, &mut ob);
                assert_eq!(oa, ob, "avx2 blur {w}x{h}");
                assert_eq!(ta, tb, "avx2 blur tmp plane {w}x{h}");
            }
        }
    }

    /// Vector downsample vs the SWAR pass, including odd trailing
    /// rows/columns and widths straddling the 16/32-pixel tails.
    #[test]
    fn vector_downsample_matches_swar_across_sizes() {
        let mut rng = SplitMix64::new(0xD0_55_17);
        let mut a = GrayImage::default();
        let mut b = GrayImage::default();
        let sizes: &[(usize, usize)] = &[
            (1, 1),
            (2, 2),
            (5, 3),
            (31, 9),
            (32, 32),
            (33, 33),
            (63, 17),
            (64, 64),
            (65, 65),
            (129, 67),
        ];
        for &(w, h) in sizes {
            let img = random_image(&mut rng, w, h);
            downsample_half_into_swar(&img, &mut a);
            downsample_half_sse2(&img, &mut b);
            assert_eq!(a, b, "sse2 downsample {w}x{h}");
            if SimdLevel::Avx2.available() {
                downsample_half_avx2(&img, &mut b);
                assert_eq!(a, b, "avx2 downsample {w}x{h}");
            }
        }
    }

    /// Exhaustive u8 window sweep through the vector horizontal row: a
    /// row enumerating every (value, position-in-vector) pairing must
    /// match the scalar clamped window at every x.
    #[test]
    fn hrow_exhaustive_value_sweep() {
        // 256 values × shifted starts cover all lane alignments.
        for shift in 0..4usize {
            let w = 256 + shift;
            let src: Vec<u8> = (0..w).map(|i| (i * 37 + shift * 11) as u8).collect();
            let mut dst = vec![0u8; w];
            hrow(&src, &mut dst, Width::Sse2);
            for (x, d) in dst.iter().enumerate() {
                assert_eq!(*d, hpix_clamped(&src, x), "sse2 x={x} shift={shift}");
            }
            if SimdLevel::Avx2.available() {
                let mut dst2 = vec![0u8; w];
                hrow(&src, &mut dst2, Width::Avx2);
                assert_eq!(dst, dst2, "avx2 shift={shift}");
            }
        }
    }
}
