//! Binary PPM (P6) and PGM (P5) image I/O.
//!
//! The repro harness dumps panoramas and diff images as PPM/PGM so the
//! qualitative figures (Figs 6 and 13) can be inspected with any viewer.

use crate::{GrayImage, RgbImage, MAX_PIXELS};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Error raised while reading a PNM stream.
#[derive(Debug)]
pub enum PnmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a valid P5/P6 file (detail in the message).
    Format(String),
}

impl fmt::Display for PnmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnmError::Io(e) => write!(f, "i/o error reading pnm: {e}"),
            PnmError::Format(msg) => write!(f, "malformed pnm: {msg}"),
        }
    }
}

impl std::error::Error for PnmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PnmError::Io(e) => Some(e),
            PnmError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PnmError {
    fn from(e: io::Error) -> Self {
        PnmError::Io(e)
    }
}

/// Write an RGB image as binary PPM (P6).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_ppm(path: impl AsRef<Path>, img: &RgbImage) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_bytes())?;
    Ok(())
}

/// Write a grayscale image as binary PGM (P5).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_pgm(path: impl AsRef<Path>, img: &GrayImage) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_bytes())?;
    Ok(())
}

fn read_header(r: &mut impl BufRead, magic: &str) -> Result<(usize, usize), PnmError> {
    let mut tokens = Vec::new();
    let mut line = String::new();
    while tokens.len() < 4 {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(PnmError::Format("truncated header".into()));
        }
        let content = line.split('#').next().unwrap_or("");
        tokens.extend(content.split_whitespace().map(str::to_owned));
    }
    if tokens[0] != magic {
        return Err(PnmError::Format(format!(
            "expected magic {magic}, found {}",
            tokens[0]
        )));
    }
    let width: usize = tokens[1]
        .parse()
        .map_err(|_| PnmError::Format("bad width".into()))?;
    let height: usize = tokens[2]
        .parse()
        .map_err(|_| PnmError::Format("bad height".into()))?;
    if tokens[3] != "255" {
        return Err(PnmError::Format("only maxval 255 supported".into()));
    }
    if width.checked_mul(height).is_none_or(|p| p > MAX_PIXELS) {
        return Err(PnmError::Format("image too large".into()));
    }
    Ok((width, height))
}

/// Read a binary PPM (P6) file.
///
/// # Errors
///
/// Returns [`PnmError`] for I/O failures or malformed content.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<RgbImage, PnmError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let (w, h) = read_header(&mut r, "P6")?;
    let mut data = vec![0u8; w * h * 3];
    r.read_exact(&mut data)
        .map_err(|_| PnmError::Format("truncated pixel data".into()))?;
    let mut img = RgbImage::new(w, h);
    img.as_bytes_mut().copy_from_slice(&data);
    Ok(img)
}

/// Read a binary PGM (P5) file.
///
/// # Errors
///
/// Returns [`PnmError`] for I/O failures or malformed content.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<GrayImage, PnmError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let (w, h) = read_header(&mut r, "P5")?;
    let mut data = vec![0u8; w * h];
    r.read_exact(&mut data)
        .map_err(|_| PnmError::Format("truncated pixel data".into()))?;
    Ok(GrayImage::from_raw(w, h, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vs_image_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn ppm_roundtrip() {
        let img = RgbImage::from_fn(7, 5, |x, y| [x as u8, y as u8, (x * y) as u8]);
        let path = tmp("rt.ppm");
        write_ppm(&path, &img).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(9, 3, |x, y| (x * 20 + y) as u8);
        let path = tmp("rt.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = tmp("bad_magic.ppm");
        std::fs::write(&path, b"P5\n1 1\n255\n\0").unwrap();
        match read_ppm(&path) {
            Err(PnmError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_data_is_rejected() {
        let path = tmp("trunc.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\nab").unwrap();
        assert!(matches!(read_pgm(&path), Err(PnmError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_in_header_are_ignored() {
        let path = tmp("comment.pgm");
        std::fs::write(&path, b"P5\n# a comment\n2 1\n255\nxy").unwrap();
        let img = read_pgm(&path).unwrap();
        assert_eq!(img.width(), 2);
        assert_eq!(img.get(0, 0), Some(b'x'));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_ppm("/definitely/not/here.ppm"),
            Err(PnmError::Io(_))
        ));
    }
}
