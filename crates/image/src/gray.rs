//! 8-bit grayscale images.

use crate::MAX_PIXELS;
use std::fmt;

/// An 8-bit single-channel image in row-major layout.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` exceeds [`MAX_PIXELS`]. Use
    /// [`GrayImage::try_new`] when dimensions are untrusted.
    pub fn new(width: usize, height: usize) -> Self {
        Self::try_new(width, height).expect("image dimensions exceed MAX_PIXELS")
    }

    /// A black image, or `None` if the dimensions overflow the pixel cap
    /// (the fallible path for fault-corrupted sizes).
    pub fn try_new(width: usize, height: usize) -> Option<Self> {
        let pixels = width.checked_mul(height)?;
        if pixels > MAX_PIXELS {
            return None;
        }
        Some(GrayImage {
            width,
            height,
            data: vec![0u8; pixels],
        })
    }

    /// Reuse this image's buffer as a zero-filled `width`×`height`
    /// image, or `None` if the dimensions overflow the pixel cap.
    ///
    /// The allocation is kept whenever the existing capacity suffices;
    /// the returned flag is `true` when the buffer had to grow (the
    /// scratch-workspace steady-state counter feeds on it).
    pub fn try_reset(&mut self, width: usize, height: usize) -> Option<bool> {
        let pixels = width.checked_mul(height)?;
        if pixels > MAX_PIXELS {
            return None;
        }
        let grew = pixels > self.data.capacity();
        self.data.clear();
        self.data.resize(pixels, 0);
        self.width = width;
        self.height = height;
        Some(grew)
    }

    /// Heap capacity of the pixel buffer, in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Overwrite this image with a bit-copy of `src`, reusing the
    /// existing buffer whenever its capacity suffices — the
    /// allocation-free counterpart of `clone` for recycled workspaces.
    pub fn copy_from(&mut self, src: &GrayImage) {
        self.width = src.width;
        self.height = src.height;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Build an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Wrap raw row-major bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "raw buffer size mismatch");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether the image has zero area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checked pixel read.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Pixel read with coordinates clamped to the border (replicate
    /// padding), as OpenCV's `BORDER_REPLICATE`.
    ///
    /// # Panics
    ///
    /// Panics if the image is empty.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        assert!(!self.is_empty(), "get_clamped on empty image");
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Checked pixel write; returns false when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) -> bool {
        if x < self.width && y < self.height {
            self.data[y * self.width + x] = v;
            true
        } else {
            false
        }
    }

    /// Checked linear read by flat index (used by fault-instrumented code
    /// that models address arithmetic explicitly).
    #[inline]
    pub fn get_linear(&self, idx: usize) -> Option<u8> {
        self.data.get(idx).copied()
    }

    /// Row-major pixel buffer.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable row-major pixel buffer.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row index out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as u64).sum::<u64>() as f64 / self.data.len() as f64
    }

    /// Bilinear sample at fractional coordinates with replicate border.
    ///
    /// Returns `None` for non-finite coordinates or coordinates more than
    /// one pixel outside the image.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> Option<f64> {
        if !x.is_finite() || !y.is_finite() || self.is_empty() {
            return None;
        }
        if x < -1.0 || y < -1.0 || x > self.width as f64 || y > self.height as f64 {
            return None;
        }
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as isize;
        let y0 = y0 as isize;
        let p00 = self.get_clamped(x0, y0) as f64;
        let p10 = self.get_clamped(x0 + 1, y0) as f64;
        let p01 = self.get_clamped(x0, y0 + 1) as f64;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f64;
        let top = p00 + (p10 - p00) * fx;
        let bottom = p01 + (p11 - p01) * fx;
        Some(top + (bottom - top) * fy)
    }

    /// Extract a sub-image; `None` if the rectangle escapes the bounds.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Option<GrayImage> {
        if x.checked_add(w)? > self.width || y.checked_add(h)? > self.height {
            return None;
        }
        let mut out = GrayImage::new(w, h);
        for row in 0..h {
            let src = &self.data[(y + row) * self.width + x..(y + row) * self.width + x + w];
            out.data[row * w..(row + 1) * w].copy_from_slice(src);
        }
        Some(out)
    }
}

impl Default for GrayImage {
    /// An empty 0×0 image — the natural seed for reusable scratch
    /// buffers that grow on first use.
    fn default() -> Self {
        GrayImage::new(0, 0)
    }
}

impl fmt::Debug for GrayImage {
    /// Compact representation: dimensions, not megabytes of pixel dumps.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrayImage {{ {}x{} }}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let g = GrayImage::new(4, 3);
        assert_eq!(g.width(), 4);
        assert_eq!(g.height(), 3);
        assert!(g.as_bytes().iter().all(|&v| v == 0));
    }

    #[test]
    fn try_new_rejects_absurd_sizes() {
        assert!(GrayImage::try_new(usize::MAX, 2).is_none());
        assert!(GrayImage::try_new(1 << 20, 1 << 20).is_none());
        assert!(GrayImage::try_new(16, 16).is_some());
    }

    #[test]
    fn try_reset_reuses_capacity_and_zero_fills() {
        let mut g = GrayImage::from_fn(8, 4, |_, _| 9);
        let grew = g.try_reset(4, 4).unwrap();
        assert!(!grew, "shrinking must reuse the buffer");
        assert_eq!((g.width(), g.height()), (4, 4));
        assert!(g.as_bytes().iter().all(|&v| v == 0));
        assert!(g.try_reset(16, 16).unwrap(), "growth must be reported");
        assert!(g.try_reset(usize::MAX, 2).is_none());
        // A failed reset leaves the previous geometry untouched.
        assert_eq!((g.width(), g.height()), (16, 16));
    }

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut g = GrayImage::new(5, 5);
        assert!(g.set(4, 4, 77));
        assert_eq!(g.get(4, 4), Some(77));
        assert!(!g.set(5, 0, 1));
        assert_eq!(g.get(0, 5), None);
        assert_eq!(g.get_linear(24), Some(77));
        assert_eq!(g.get_linear(25), None);
    }

    #[test]
    fn clamped_reads_replicate_border() {
        let g = GrayImage::from_fn(3, 3, |x, y| (x * 10 + y) as u8);
        assert_eq!(g.get_clamped(-5, -5), g.get(0, 0).unwrap());
        assert_eq!(g.get_clamped(10, 1), g.get(2, 1).unwrap());
    }

    #[test]
    fn bilinear_interpolates_between_pixels() {
        let mut g = GrayImage::new(2, 1);
        g.set(0, 0, 0);
        g.set(1, 0, 100);
        assert_eq!(g.sample_bilinear(0.5, 0.0), Some(50.0));
        assert_eq!(g.sample_bilinear(0.0, 0.0), Some(0.0));
        assert_eq!(g.sample_bilinear(f64::NAN, 0.0), None);
        assert_eq!(g.sample_bilinear(500.0, 0.0), None);
    }

    #[test]
    fn crop_extracts_and_bounds_checks() {
        let g = GrayImage::from_fn(6, 4, |x, y| (y * 6 + x) as u8);
        let c = g.crop(2, 1, 3, 2).unwrap();
        assert_eq!(c.width(), 3);
        assert_eq!(c.get(0, 0), g.get(2, 1));
        assert_eq!(c.get(2, 1), g.get(4, 2));
        assert!(g.crop(5, 0, 2, 1).is_none());
        assert!(g.crop(0, 3, 1, 2).is_none());
    }

    #[test]
    fn mean_and_rows() {
        let g = GrayImage::from_fn(2, 2, |x, _| if x == 0 { 0 } else { 100 });
        assert_eq!(g.mean(), 50.0);
        assert_eq!(g.row(0), &[0, 100]);
        assert_eq!(GrayImage::new(0, 0).mean(), 0.0);
    }

    #[test]
    fn debug_is_compact() {
        let g = GrayImage::new(640, 480);
        assert_eq!(format!("{g:?}"), "GrayImage { 640x480 }");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_raw_validates_length() {
        let _ = GrayImage::from_raw(3, 3, vec![0; 8]);
    }
}
