//! # video-summarization
//!
//! A from-scratch Rust reproduction of *"Impact of Software
//! Approximations on the Resiliency of a Video Summarization System"*
//! (DSN 2018): an end-to-end UAV video-summarization pipeline, three
//! software approximations, a software-implemented fault-injection
//! framework, an analytic performance/energy model, and a synthetic
//! aerial-video substrate — everything needed to regenerate the paper's
//! evaluation.
//!
//! This facade re-exports the workspace crates under stable module
//! names. Downstream users depend on this one crate:
//!
//! | Module | Contents |
//! |---|---|
//! | [`pipeline`] | the VS application, approximations, quality metric |
//! | [`fault`] | tap instrumentation + injection campaigns |
//! | [`perf`] | CPI/energy model, execution profiles |
//! | [`video`] | synthetic aerial inputs (Input 1 / Input 2) |
//! | [`image`], [`linalg`], [`features`], [`matching`], [`geometry`], [`warp`] | the vision substrate |
//!
//! # Quickstart
//!
//! ```
//! use video_summarization::prelude::*;
//!
//! // Render a short synthetic aerial clip and summarize it.
//! let frames = render_input(&InputSpec::input2_preset().with_frames(8));
//! let vs = VideoSummarizer::new(PipelineConfig::default());
//! let summary = vs.run(&frames)?;
//! assert!(!summary.panoramas.is_empty());
//!
//! // Inject 50 GPR bit flips and classify the outcomes.
//! let workload = VsWorkload::new(frames, PipelineConfig::default());
//! let golden = campaign::profile_golden(&workload)?;
//! let cfg = CampaignConfig::new(RegClass::Gpr, 50).seed(1);
//! let records = campaign::run_campaign(&workload, &golden, &cfg);
//! let rates = outcome_rates(&records);
//! assert_eq!(rates.n, 50);
//! # Ok::<(), video_summarization::fault::SimError>(())
//! ```

/// The paper's primary contribution: pipeline, approximations, quality
/// metric, workload adapters and canonical experiment setups.
pub use vs_core as pipeline;

/// Software-implemented fault injection (the AFI analogue).
pub use vs_fault as fault;

/// Analytic performance/energy model and execution profiles.
pub use vs_perfmodel as perf;

/// Synthetic aerial-video generation.
pub use vs_video as video;

/// Event summarization: moving-object detection, tracking, overlays.
pub use vs_events as events;

/// Image containers and basic processing.
pub use vs_image as image;

/// Small dense linear algebra.
pub use vs_linalg as linalg;

/// FAST/ORB feature detection and description.
pub use vs_features as features;

/// Descriptor matching (ratio test and simple matching).
pub use vs_matching as matching;

/// RANSAC, homography and affine estimation.
pub use vs_geometry as geometry;

/// Perspective warping and panorama compositing.
pub use vs_warp as warp;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use vs_core::experiments::{self, InputId, Scale};
    pub use vs_core::{
        quality, summarize_with_events, Approximation, EventConfig, IntegratedSummary,
        IntegratedWorkload, PipelineConfig, Summary, VideoSummarizer, VsWorkload, WpWorkload,
    };
    pub use vs_fault::campaign::{self, CampaignConfig, Outcome, Workload};
    pub use vs_fault::spec::RegClass;
    pub use vs_fault::stats::outcome_rates;
    pub use vs_fault::{FuncId, FuncMask, SimError};
    pub use vs_image::{GrayImage, RgbImage};
    pub use vs_perfmodel::MachineModel;
    pub use vs_video::{render_input, InputSpec};
    pub use vs_warp::{BlendMode, CompositeOptions};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let _ = crate::pipeline::PipelineConfig::default();
        let _ = crate::perf::MachineModel::default();
        let _ = crate::fault::FuncMask::all();
        let _ = crate::video::InputSpec::input1_preset();
        let _ = crate::image::GrayImage::new(1, 1);
        let _ = crate::linalg::Mat3::IDENTITY;
    }
}
