//! `vs-summarize` — summarize a directory of video frames into
//! mini-panoramas (optionally with moving-object tracks).
//!
//! ```text
//! vs-summarize <frames-dir> [--out DIR] [--approx none|rfd|kds|sm]
//!              [--events] [--seed S] [--demo N]
//! ```
//!
//! `<frames-dir>` must contain binary PPM (P6) frames; files are
//! processed in lexicographic order (use zero-padded names). `--demo N`
//! generates N synthetic aerial frames into the directory first, so the
//! tool can be tried without any footage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use video_summarization::image::{read_ppm, write_ppm};
use video_summarization::prelude::*;

struct Args {
    frames_dir: PathBuf,
    out_dir: PathBuf,
    approx: Approximation,
    events: bool,
    seed: u64,
    demo: Option<usize>,
}

const USAGE: &str = "usage: vs-summarize <frames-dir> [--out DIR] [--approx none|rfd|kds|sm] [--events] [--seed S] [--demo N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        frames_dir: PathBuf::new(),
        out_dir: PathBuf::from("out/summarize"),
        approx: Approximation::Baseline,
        events: false,
        seed: 0x5eed_0001,
        demo: None,
    };
    let mut positional = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out_dir = it.next().ok_or("--out needs a value")?.into(),
            "--approx" => {
                args.approx = match it.next().ok_or("--approx needs a value")?.as_str() {
                    "none" => Approximation::Baseline,
                    "rfd" => Approximation::rfd_default(),
                    "kds" => Approximation::kds_default(),
                    "sm" => Approximation::sm_default(),
                    other => return Err(format!("unknown approximation '{other}'")),
                }
            }
            "--events" => args.events = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value")?
            }
            "--demo" => {
                args.demo = Some(
                    it.next()
                        .ok_or("--demo needs a value")?
                        .parse()
                        .map_err(|_| "bad --demo value")?,
                )
            }
            other if !other.starts_with('-') => positional.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match positional.len() {
        1 => {
            args.frames_dir = positional.remove(0);
            Ok(args)
        }
        0 => Err("missing <frames-dir>".into()),
        _ => Err("too many positional arguments".into()),
    }
}

fn load_frames(dir: &Path) -> Result<Vec<RgbImage>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ppm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .ppm frames in {}", dir.display()));
    }
    paths
        .iter()
        .map(|p| read_ppm(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect()
}

fn write_demo_frames(dir: &Path, n: usize, seed: u64) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let spec = InputSpec::input2_preset().with_frames(n);
    // Place the demo vehicles on the camera's path so they are visible.
    let mid = spec.pose_at_frame(n / 2).center;
    let vehicles: Vec<video_summarization::video::MovingObject> = (0..4)
        .map(|i| video_summarization::video::MovingObject {
            start: video_summarization::linalg::Vec2::new(
                mid.x - 25.0 + 13.0 * (i % 2) as f64 + (seed % 7) as f64,
                mid.y - 20.0 + 15.0 * (i / 2) as f64,
            ),
            velocity: video_summarization::linalg::Vec2::new(
                5.5 + i as f64,
                if i % 2 == 0 { 2.5 } else { -2.0 },
            ),
            half_size: (4.0, 3.0),
            color: [250, 230, 40],
        })
        .collect();
    let spec = spec.with_objects(vehicles);
    let frames = render_input(&spec);
    for (i, f) in frames.iter().enumerate() {
        let path = dir.join(format!("frame_{i:04}.ppm"));
        write_ppm(&path, f).map_err(|e| e.to_string())?;
    }
    println!("wrote {n} demo frames to {}", dir.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(n) = args.demo {
        write_demo_frames(&args.frames_dir, n, args.seed)?;
    }
    let frames = load_frames(&args.frames_dir)?;
    println!(
        "loaded {} frames ({}x{}), algorithm {}",
        frames.len(),
        frames[0].width(),
        frames[0].height(),
        args.approx,
    );
    let config = PipelineConfig::default()
        .with_seed(args.seed)
        .with_approximation(args.approx);
    std::fs::create_dir_all(&args.out_dir).map_err(|e| e.to_string())?;

    let summary = if args.events {
        let integrated = summarize_with_events(&frames, &config, &EventConfig::default())
            .map_err(|e| format!("pipeline failed: {e}"))?;
        println!("tracked {} moving object(s)", integrated.track_count());
        integrated.coverage
    } else {
        VideoSummarizer::new(config)
            .run(&frames)
            .map_err(|e| format!("pipeline failed: {e}"))?
    };

    println!(
        "{} mini-panorama(s); {} homographies, {} affine fallbacks, {} frames discarded, {} dropped",
        summary.stats.segments,
        summary.stats.homographies,
        summary.stats.affine_fallbacks,
        summary.stats.frames_discarded,
        summary.stats.frames_dropped_by_input,
    );
    for (i, pano) in summary.panoramas.iter().enumerate() {
        let path = args.out_dir.join(format!("panorama_{i:02}.ppm"));
        write_ppm(&path, pano).map_err(|e| e.to_string())?;
        println!("  {} ({}x{})", path.display(), pano.width(), pano.height());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
