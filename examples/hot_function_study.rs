//! The hot-function case study (§V-C / Fig 11b), runnable end to end:
//! can you estimate the VS application's resiliency by injecting into a
//! standalone `WarpPerspective` kernel? (Paper's answer: no — and this
//! example shows why, plus the Relyzer-style pruned campaign as the
//! better shortcut.)
//!
//! ```text
//! cargo run --release --example hot_function_study [-- <injections>]
//! ```

use video_summarization::fault::campaign::profile_golden_masked;
use video_summarization::fault::pruning::{run_pruned_campaign, PrunedConfig};
use video_summarization::prelude::*;

fn main() -> Result<(), SimError> {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let warp_only = FuncMask::only(&[FuncId::WarpPerspective, FuncId::RemapBilinear]);

    // 1. End-to-end VS with injections confined to the warp functions.
    let vs = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
    let vs_golden = profile_golden_masked(&vs, warp_only)?;
    let cfg = CampaignConfig::new(RegClass::Gpr, injections)
        .seed(0xB)
        .keep_sdc_outputs(false);
    let vs_rates = outcome_rates(&campaign::run_campaign(&vs, &vs_golden, &cfg));
    println!(
        "VS (end-to-end), warp-confined faults: masked {:.1}%  sdc {:.1}%  crash {:.1}%",
        vs_rates.masked, vs_rates.sdc, vs_rates.crash
    );

    // 2. The standalone WP toy benchmark with the same fault population.
    let wp = WpWorkload::representative(vs.frames());
    let wp_golden = profile_golden_masked(&wp, warp_only)?;
    let wp_rates = outcome_rates(&campaign::run_campaign(&wp, &wp_golden, &cfg));
    println!(
        "WP (standalone),  warp-confined faults: masked {:.1}%  sdc {:.1}%  crash {:.1}%",
        wp_rates.masked, wp_rates.sdc, wp_rates.crash
    );
    println!(
        "-> compositional masking: the full workflow masks {:.1}pp more than the kernel\n\
         (later frames paint over corrupted warp output), so kernel-only studies\n\
         overestimate SDC exposure — the paper's §VI-C conclusion.",
        vs_rates.masked - wp_rates.masked
    );

    // 3. The *sound* shortcut: a pruned campaign over the whole app.
    let full_golden = campaign::profile_golden(&vs)?;
    let pruned = run_pruned_campaign(
        &vs,
        &full_golden,
        &PrunedConfig {
            total_pilots: injections / 2,
            min_pilots_per_group: 4,
            seed: 0xC,
            hang_factor: 16,
        },
    );
    let full_rates = outcome_rates(&campaign::run_campaign(&vs, &full_golden, &cfg));
    println!(
        "\nRelyzer-style pruned campaign ({} pilots) vs full campaign ({} injections):",
        pruned.injections, injections
    );
    println!(
        "  pruned estimate: masked {:.1}%  sdc {:.1}%  crash {:.1}%",
        pruned.estimate.masked, pruned.estimate.sdc, pruned.estimate.crash
    );
    println!(
        "  full campaign:   masked {:.1}%  sdc {:.1}%  crash {:.1}%",
        full_rates.masked, full_rates.sdc, full_rates.crash
    );
    println!(
        "  max delta: {:.1}pp — whole-application coverage at a fraction of the cost,\n\
         unlike the unsound hot-kernel shortcut above.",
        pruned.estimate.max_abs_delta(&full_rates)
    );
    Ok(())
}
