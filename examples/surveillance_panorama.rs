//! Domain example: a surveillance sweep with a custom camera trajectory.
//!
//! Builds a bespoke input (instead of the canned Input 1/2 presets) by
//! flying a user-defined pattern over a custom world, summarizes it, and
//! writes every mini-panorama — the workflow a UAV operator would use
//! this library for.
//!
//! ```text
//! cargo run --release --example surveillance_panorama
//! ```

use video_summarization::image::write_ppm;
use video_summarization::prelude::*;
use video_summarization::video::{generate_world, Trajectory, TrajectoryKind, WorldConfig};

fn main() -> Result<(), SimError> {
    // A denser, urban-ish world.
    let world_cfg = WorldConfig {
        seed: 0x5EC_0411,
        size: 512,
        fields: 20,
        roads: 14,
        buildings: 160,
        tree_clusters: 60,
    };
    println!("generating {0}x{0} world...", world_cfg.size);
    let world = generate_world(&world_cfg);

    // A sweep with one deliberate scene cut in the middle: the summary
    // should contain (at least) two mini-panoramas.
    let spec = InputSpec {
        name: "sweep",
        frames: 24,
        nominal_frames: 24,
        frame_width: 112,
        frame_height: 84,
        world: world_cfg,
        trajectory: Trajectory::new(TrajectoryKind::HighVariation, 0xCA11),
        sensor_noise: 2.0,
        noise_seed: 0x404,
        objects: Vec::new(),
    };
    let frames = video_summarization::video::render_input_over(&spec, &world);
    println!("rendered {} frames", frames.len());

    let vs = VideoSummarizer::new(PipelineConfig::default());
    let summary = vs.run(&frames)?;
    println!(
        "sweep summarized into {} mini-panorama(s); {} frames discarded at scene changes",
        summary.stats.segments, summary.stats.frames_discarded
    );

    let out = std::path::Path::new("out/surveillance");
    std::fs::create_dir_all(out).expect("create output dir");
    for (i, pano) in summary.panoramas.iter().enumerate() {
        let path = out.join(format!("mini_panorama_{i}.ppm"));
        write_ppm(&path, pano).expect("write panorama");
        println!("  {} ({}x{})", path.display(), pano.width(), pano.height());
    }

    // Coverage summary: how much of the world did the sweep capture?
    let covered: usize = summary
        .panoramas
        .iter()
        .map(|p| p.width() * p.height())
        .sum();
    let frames_px = frames.len() * spec.frame_width * spec.frame_height;
    println!(
        "data reduction: {} frame pixels -> {} panorama pixels ({:.1}x)",
        frames_px,
        covered,
        frames_px as f64 / covered.max(1) as f64
    );
    Ok(())
}
