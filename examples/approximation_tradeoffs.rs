//! Approximation trade-off study (the paper's §IV-A on your machine):
//! for each algorithm variant and input, report modeled time/energy,
//! output quality against the precise baseline, and the resulting
//! panorama structure.
//!
//! ```text
//! cargo run --release --example approximation_tradeoffs
//! ```

use video_summarization::fault::campaign;
use video_summarization::prelude::*;

fn main() -> Result<(), SimError> {
    let model = MachineModel::default();
    for input in InputId::BOTH {
        println!("== {input} ==");
        let mut baseline_perf = None;
        let mut baseline_panos = None;
        for approx in Approximation::paper_variants() {
            let w = experiments::vs_workload(input, Scale::Quick, approx);
            let golden = campaign::profile_golden(&w)?;
            let perf = model.evaluate(&golden.profile.instr);
            let base = *baseline_perf.get_or_insert(perf);
            let panos = golden.output;
            let ref_panos = baseline_panos.get_or_insert_with(|| panos.clone());
            let q = quality::summary_quality(ref_panos, &panos);
            let summary = w.summarize()?;
            println!(
                "  {:7}  time x{:.2}  energy x{:.2}  quality dev {:6.2}%  segments {}  discarded {}",
                approx.to_string(),
                perf.time_seconds / base.time_seconds,
                perf.energy_joules / base.energy_joules,
                q.relative_l2_norm,
                summary.stats.segments,
                summary.stats.frames_discarded,
            );
        }
    }
    println!(
        "\nShape to look for (paper §IV-A): VS_RFD gains most on Input1, VS_KDS on Input2;\n\
         Input1's quality degrades more than Input2's under every approximation."
    );
    Ok(())
}
