//! Integrated summarization (the paper's full Fig 2 workflow): coverage
//! panorama + moving-object tracks overlaid on it.
//!
//! Renders an aerial clip with vehicles driving through the camera's
//! field of view, runs coverage and event summarization, and writes the
//! annotated panorama.
//!
//! ```text
//! cargo run --release --example event_summarization
//! ```

use video_summarization::image::write_ppm;
use video_summarization::linalg::Vec2;
use video_summarization::prelude::*;
use video_summarization::video::MovingObject;

fn main() -> Result<(), SimError> {
    // An input whose vehicles cross the camera's path.
    let spec = InputSpec::input2_preset()
        .with_frames(14)
        .with_frame_size(112, 84);
    let mid = spec.pose_at_frame(7).center;
    let vehicles: Vec<MovingObject> = (0..5)
        .map(|i| MovingObject {
            start: Vec2::new(
                mid.x - 30.0 + 14.0 * (i % 3) as f64,
                mid.y - 22.0 + 16.0 * (i / 3) as f64,
            ),
            velocity: Vec2::new(5.0 + i as f64, if i % 2 == 0 { 2.5 } else { -2.0 }),
            half_size: (4.0, 3.0),
            color: [250, 230, 40],
        })
        .collect();
    let spec = spec.with_objects(vehicles);
    println!(
        "rendering {} frames with {} vehicles...",
        spec.frames,
        spec.objects.len()
    );
    let frames = render_input(&spec);

    let integrated =
        summarize_with_events(&frames, &PipelineConfig::default(), &EventConfig::default())?;
    println!(
        "coverage: {} mini-panorama(s); events: {} track(s)",
        integrated.coverage.stats.segments,
        integrated.track_count()
    );
    for (seg, tracks) in integrated.tracks_per_segment.iter().enumerate() {
        for t in tracks {
            println!(
                "  segment {seg} track {}: {} observations, displacement {:.1}px",
                t.id,
                t.points.len(),
                t.displacement()
            );
        }
    }

    let out = std::path::Path::new("out/events");
    std::fs::create_dir_all(out).expect("create output dir");
    for (i, pano) in integrated.coverage.panoramas.iter().enumerate() {
        let path = out.join(format!("annotated_panorama_{i}.ppm"));
        write_ppm(&path, pano).expect("write panorama");
        println!("wrote {}", path.display());
    }
    Ok(())
}
