//! Quickstart: summarize a synthetic aerial clip and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use video_summarization::prelude::*;

fn main() -> Result<(), SimError> {
    // 1. Render a synthetic aerial clip (the paper's VIRAT stand-in).
    let spec = InputSpec::input2_preset().with_frames(16);
    println!(
        "rendering {} frames of {} ({}x{})...",
        spec.frames, spec.name, spec.frame_width, spec.frame_height
    );
    let frames = render_input(&spec);

    // 2. Summarize with the baseline (precise) VS algorithm.
    let vs = VideoSummarizer::new(PipelineConfig::default());
    let summary = vs.run(&frames)?;
    println!(
        "summary: {} mini-panorama(s) from {} frames ({} homographies, {} affine fallbacks, {} discarded)",
        summary.stats.segments,
        summary.stats.frames_in,
        summary.stats.homographies,
        summary.stats.affine_fallbacks,
        summary.stats.frames_discarded,
    );
    for (i, pano) in summary.panoramas.iter().enumerate() {
        println!("  panorama {i}: {}x{}", pano.width(), pano.height());
    }

    // 3. Save the primary panorama for viewing.
    let out = std::path::Path::new("out/quickstart");
    std::fs::create_dir_all(out).expect("create output dir");
    if let Some(pano) = quality::primary_panorama(&summary.panoramas) {
        let path = out.join("panorama.ppm");
        video_summarization::image::write_ppm(&path, pano).expect("write panorama");
        println!("primary panorama written to {}", path.display());
    }

    // 4. Compare against an approximate run (VS_RFD, 10% frame drops).
    let approx = VideoSummarizer::new(
        PipelineConfig::default().with_approximation(Approximation::rfd_default()),
    );
    let approx_summary = approx.run(&frames)?;
    let q = quality::summary_quality(&summary.panoramas, &approx_summary.panoramas);
    println!(
        "VS_RFD dropped {} frame(s); output deviation from baseline: {:.2}%{}",
        approx_summary.stats.frames_dropped_by_input,
        q.relative_l2_norm,
        q.ed.map(|e| format!(" (ED {e})")).unwrap_or_default(),
    );
    Ok(())
}
