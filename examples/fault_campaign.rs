//! Fault-injection campaign walkthrough: the paper's §V methodology on a
//! laptop-sized workload.
//!
//! Profiles a golden run, injects single-bit flips into the GPR and FPR
//! streams, and reports the Mask/SDC/Crash/Hang breakdown, the crash
//! cause split, and register coverage — the ingredients of Figs 9 and 10.
//!
//! ```text
//! cargo run --release --example fault_campaign [-- <injections>]
//! ```

use video_summarization::fault::convergence::{convergence_curve, even_checkpoints, knee};
use video_summarization::fault::stats::{coefficient_of_variation, register_histogram};
use video_summarization::prelude::*;

fn main() -> Result<(), SimError> {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let workload = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
    println!("profiling golden run...");
    let golden = campaign::profile_golden(&workload)?;
    println!(
        "  error-site population: {} GPR taps, {} FPR taps, {} instructions",
        golden.profile.gpr_taps, golden.profile.fpr_taps, golden.profile.instr.total
    );

    for class in [RegClass::Gpr, RegClass::Fpr] {
        println!("\ninjecting {injections} single-bit flips into {class}s...");
        let cfg = CampaignConfig::new(class, injections).seed(7);
        let records = campaign::run_campaign(&workload, &golden, &cfg);
        let rates = outcome_rates(&records);
        println!(
            "  masked {:.1}%  sdc {:.1}%  crash {:.1}%  hang {:.1}%",
            rates.masked, rates.sdc, rates.crash, rates.hang
        );
        if rates.crash > 0.0 {
            println!(
                "  crash causes: {:.0}% segfault, {:.0}% abort",
                rates.crash_segfault_share, rates.crash_abort_share
            );
        }
        if class == RegClass::Gpr {
            let hist = register_histogram(&records);
            println!(
                "  register coverage: all 32 GPRs hit: {}, CV {:.2}",
                hist.iter().all(|&c| c > 0),
                coefficient_of_variation(&hist)
            );
            let curve = convergence_curve(&records, &even_checkpoints(records.len(), 25));
            match knee(&curve, 2.0) {
                Some(k) => println!("  rates stable (±2pp) from {k} injections"),
                None => println!("  rates not yet stable — run more injections"),
            }
        }
    }
    Ok(())
}
