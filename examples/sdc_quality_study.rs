//! SDC-quality study (the paper's §V-D / Fig 12 on a small budget):
//! collect the silent data corruptions from a GPR campaign, score each
//! with the Egregiousness Degree metric, and print the distribution.
//!
//! ```text
//! cargo run --release --example sdc_quality_study [-- <injections>]
//! ```

use video_summarization::fault::campaign;
use video_summarization::pipeline::quality::{ed_cdf, summary_quality};
use video_summarization::prelude::*;

fn main() -> Result<(), SimError> {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let workload = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let golden = campaign::profile_golden(&workload)?;
    println!("running {injections} GPR injections, keeping SDC outputs...");
    let cfg = CampaignConfig::new(RegClass::Gpr, injections)
        .seed(0xED)
        .keep_sdc_outputs(true);
    let records = campaign::run_campaign(&workload, &golden, &cfg);

    let qualities: Vec<_> = records
        .iter()
        .filter(|r| r.outcome == Outcome::Sdc)
        .filter_map(|r| r.sdc_output.as_ref())
        .map(|out| summary_quality(&golden.output, out))
        .collect();
    println!("collected {} SDCs", qualities.len());
    if qualities.is_empty() {
        println!("no SDCs at this budget — rerun with more injections");
        return Ok(());
    }

    for q in &qualities {
        match q.ed {
            Some(ed) => println!(
                "  SDC: relative_l2_norm {:6.2}%  ED {ed}",
                q.relative_l2_norm
            ),
            None => println!(
                "  SDC: relative_l2_norm {:6.2}%  EGREGIOUS",
                q.relative_l2_norm
            ),
        }
    }

    let cdf = ed_cdf(&qualities, 20);
    println!("\ncumulative distribution (percentage of SDCs with ED <= x):");
    for ed in [0u32, 1, 2, 5, 10, 20] {
        println!("  ED <= {ed:2}: {:5.1}%", cdf[ed as usize].1);
    }
    let egregious = qualities.iter().filter(|q| q.is_egregious()).count();
    println!(
        "\n{} of {} SDCs are egregious (must be protected); the rest are candidates\n\
         for cheap, tolerable-SDC operation — the paper's headline conclusion.",
        egregious,
        qualities.len()
    );
    Ok(())
}
