//! Zero-perturbation proof for fault forensics: per-stage digest
//! recording must never change what the fault simulator computes.
//! Campaigns run against a forensic golden (digest recorder armed on
//! every non-crash run) must produce (spec, outcome, fired) record
//! lists bit-identical to campaigns against a plain golden — across
//! register classes, thread counts and both checkpoint policies. The
//! digests live outside the simulated machine; any divergence here
//! means a digest computation leaked into the tap stream.

use video_summarization::prelude::*;
use vs_core::workloads::VsWorkload;
use vs_fault::campaign::{CheckpointPolicy, Injection};
use vs_fault::forensics::attributed_stage;

fn workload() -> VsWorkload {
    experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline)
}

/// (spec, outcome, fired) fingerprint of a campaign — everything the
/// resiliency statistics are built from.
fn fingerprint(recs: &[Injection<Vec<RgbImage>>]) -> Vec<String> {
    recs.iter()
        .map(|r| format!("{} {:?} {:?}", r.spec, r.outcome, r.fired))
        .collect()
}

#[test]
fn forensic_golden_matches_plain_golden() {
    let w = workload();
    let plain = campaign::profile_golden(&w).unwrap();
    let forensic = campaign::profile_golden_forensic(&w).unwrap();

    assert_eq!(plain.profile, forensic.profile, "tap profile perturbed");
    assert_eq!(plain.output, forensic.output, "golden output perturbed");
    assert!(
        forensic.digests.is_some(),
        "forensic profiling recorded no digest trace"
    );
}

#[test]
fn campaigns_match_with_forensics_on_across_classes_and_threads() {
    let w = workload();
    let plain = campaign::profile_golden(&w).unwrap();
    let forensic = campaign::profile_golden_forensic(&w).unwrap();
    const N: usize = 16;

    for class in [RegClass::Gpr, RegClass::Fpr] {
        for threads in [1usize, 4] {
            let cfg = CampaignConfig::new(class, N).seed(0xF0E2).threads(threads);
            let off = campaign::run_campaign(&w, &plain, &cfg);
            let on = campaign::run_campaign(&w, &forensic, &cfg);
            assert_eq!(
                fingerprint(&off),
                fingerprint(&on),
                "forensics perturbed {class:?} campaign at threads({threads})"
            );
            // Forensics-off campaigns must not grow records; forensics-on
            // campaigns attribute every non-crash run.
            assert!(off.iter().all(|r| r.forensics.is_none()));
            for r in &on {
                match r.outcome {
                    Outcome::Masked | Outcome::Sdc => {
                        assert!(
                            attributed_stage(r.forensics.as_ref(), r.fired).is_some()
                                || r.fired.is_none(),
                            "unattributed non-crash injection {}",
                            r.spec
                        );
                    }
                    _ => assert!(
                        r.forensics.is_none(),
                        "crash/hang run {} carries a digest trace",
                        r.spec
                    ),
                }
            }
        }
    }
}

#[test]
fn checkpointed_forensic_campaigns_match_scratch() {
    let w = workload();
    let plain = campaign::profile_golden(&w).unwrap();
    let ck = campaign::profile_golden_checkpointed_forensic(&w, CheckpointPolicy::EveryKFrames(2))
        .unwrap();
    assert_eq!(plain.profile, ck.golden.profile);
    assert!(ck.golden.digests.is_some());
    const N: usize = 16;

    for threads in [1usize, 4] {
        let scratch_cfg = CampaignConfig::new(RegClass::Gpr, N)
            .seed(0xF0E2)
            .threads(threads);
        let ck_cfg = scratch_cfg
            .clone()
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(2));

        let off = campaign::run_campaign(&w, &plain, &scratch_cfg);
        let scratch = campaign::run_campaign(&w, &ck.golden, &scratch_cfg);
        let fast = campaign::run_campaign_checkpointed(&w, &ck, &ck_cfg);

        // Outcomes identical forensics off vs on, scratch vs resumed.
        assert_eq!(
            fingerprint(&off),
            fingerprint(&fast),
            "checkpointed forensic campaign perturbed at threads({threads})"
        );
        assert_eq!(fingerprint(&scratch), fingerprint(&fast));

        // Checkpoint fast-forward must reproduce the exact digest
        // traces of from-scratch runs: attribution cannot depend on
        // where a run resumed.
        for (s, f) in scratch.iter().zip(&fast) {
            assert_eq!(
                s.forensics, f.forensics,
                "digest trace diverged between scratch and resumed run {}",
                s.spec
            );
        }
    }
}
