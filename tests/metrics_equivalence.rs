//! Zero-perturbation proof for the metrics layer: arming per-worker
//! phase histograms must never change what the fault simulator
//! computes. Fault draws, firing records and outcome classifications
//! have to be bit-for-bit identical with metrics off and with a
//! registry collecting every phase sample — across thread counts, both
//! checkpoint policies, and both result-collection strategies. Metrics
//! live outside the simulated machine; any divergence here means a
//! timer leaked into the tap stream.

use std::sync::Arc;
use video_summarization::prelude::*;
use vs_core::workloads::VsWorkload;
use vs_fault::campaign::{phase, CheckpointPolicy, Collection, Injection};
use vs_telemetry::metrics::{self, MetricsRegistry};

fn workload() -> VsWorkload {
    experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline)
}

/// (spec, outcome, fired) fingerprint of a campaign — everything the
/// resiliency statistics are built from.
fn fingerprint(recs: &[Injection<Vec<RgbImage>>]) -> Vec<String> {
    recs.iter()
        .map(|r| format!("{} {:?} {:?}", r.spec, r.outcome, r.fired))
        .collect()
}

#[test]
fn campaigns_are_identical_with_metrics_registry_installed() {
    let w = workload();
    let golden = campaign::profile_golden(&w).unwrap();
    const N: usize = 16;

    for threads in [1usize, 4] {
        let cfg = CampaignConfig::new(RegClass::Gpr, N)
            .seed(0x7E1E)
            .threads(threads);
        let quiet = campaign::run_campaign(&w, &golden, &cfg);

        let reg = Arc::new(MetricsRegistry::new());
        let metered = {
            let _g = metrics::install(reg.clone());
            campaign::run_campaign(&w, &golden, &cfg)
        };
        assert_eq!(
            fingerprint(&quiet),
            fingerprint(&metered),
            "metrics perturbed campaign at threads({threads})"
        );

        // The registry really collected: one exec sample per injection,
        // one wall sample per worker, and the phase sums nest inside
        // the wall denominator.
        let m = reg.merged();
        let exec = m.histogram(phase::EXEC).expect("exec histogram");
        assert_eq!(exec.count(), N as u64);
        let wall = m.histogram(phase::WORKER_WALL).expect("wall histogram");
        assert_eq!(wall.count(), threads as u64);
        let attributed: u64 = phase::TOP
            .iter()
            .filter_map(|p| m.histogram(p))
            .map(|h| h.sum())
            .sum();
        assert!(attributed > 0 && attributed <= wall.sum());
    }
}

#[test]
fn checkpointed_campaigns_are_identical_with_metrics_registry_installed() {
    let w = workload();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    const N: usize = 16;

    for threads in [1usize, 4] {
        let cfg = CampaignConfig::new(RegClass::Gpr, N)
            .seed(0x7E1E)
            .threads(threads)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(2));
        let quiet = campaign::run_campaign_checkpointed(&w, &ck, &cfg);

        let reg = Arc::new(MetricsRegistry::new());
        let metered = {
            let _g = metrics::install(reg.clone());
            campaign::run_campaign_checkpointed(&w, &ck, &cfg)
        };
        assert_eq!(
            fingerprint(&quiet),
            fingerprint(&metered),
            "metrics perturbed checkpointed campaign at threads({threads})"
        );

        // Every run is counted exactly once as resumed or from-scratch.
        let m = reg.merged();
        assert_eq!(
            m.counter(phase::RUNS_RESUMED) + m.counter(phase::RUNS_FROM_SCRATCH),
            N as u64
        );
        assert!(
            m.histogram(phase::RESTORE).is_some(),
            "resumed runs must time checkpoint restore"
        );
    }
}

#[test]
fn collection_strategies_are_identical_at_workload_layer() {
    let w = workload();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    const N: usize = 16;
    const THREADS: usize = 4;

    let cfg_for = |coll: Collection| {
        CampaignConfig::new(RegClass::Gpr, N)
            .seed(0x7E1E)
            .threads(THREADS)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(2))
            .collection(coll)
    };
    let reg_slots = Arc::new(MetricsRegistry::new());
    let slots = {
        let _g = metrics::install(reg_slots.clone());
        campaign::run_campaign_checkpointed(&w, &ck, &cfg_for(Collection::WorkerSlots))
    };
    let reg_mutex = Arc::new(MetricsRegistry::new());
    let mutex = {
        let _g = metrics::install(reg_mutex.clone());
        campaign::run_campaign_checkpointed(&w, &ck, &cfg_for(Collection::SharedMutex))
    };
    assert_eq!(
        fingerprint(&slots),
        fingerprint(&mutex),
        "result-collection strategy changed campaign outcomes"
    );

    // Phase vocabulary matches the strategy: the legacy collector waits
    // on the shared mutex once per worker, the per-worker-slot
    // collector never locks (its scatter runs on the driver thread).
    let m_mutex = reg_mutex.merged();
    let lock = m_mutex.histogram(phase::LOCK_WAIT).expect("lock_wait");
    assert_eq!(lock.count(), THREADS as u64);
    assert!(m_mutex.histogram(phase::COLLECT).is_none());

    let m_slots = reg_slots.merged();
    assert!(m_slots.histogram(phase::LOCK_WAIT).is_none());
    let collect = m_slots.histogram(phase::COLLECT).expect("collect");
    assert_eq!(collect.count(), 1);
}
