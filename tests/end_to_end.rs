//! End-to-end pipeline integration tests spanning the video, vision and
//! core crates.

use video_summarization::prelude::*;

fn frames(input: InputId, n: usize) -> Vec<RgbImage> {
    let spec = experiments::input_spec(input, Scale::Quick).with_frames(n);
    render_input(&spec)
}

#[test]
fn baseline_summarizes_both_inputs() {
    for input in InputId::BOTH {
        let f = frames(input, 10);
        let vs = VideoSummarizer::new(experiments::pipeline_config(
            Scale::Quick,
            Approximation::Baseline,
        ));
        let s = vs.run(&f).expect("golden run must succeed");
        assert!(!s.panoramas.is_empty(), "{input}: no panoramas");
        assert_eq!(s.stats.frames_in, 10);
        let aligned = s.stats.homographies + s.stats.affine_fallbacks + s.stats.segments;
        assert!(
            aligned + s.stats.frames_discarded + s.stats.frames_dropped_by_input == 10,
            "{input}: inconsistent stats {:?}",
            s.stats
        );
    }
}

#[test]
fn panorama_grows_beyond_single_frame_on_smooth_input() {
    let f = frames(InputId::Input2, 12);
    let vs = VideoSummarizer::new(experiments::pipeline_config(
        Scale::Quick,
        Approximation::Baseline,
    ));
    let s = vs.run(&f).unwrap();
    let pano = quality::primary_panorama(&s.panoramas).unwrap();
    let frame_area = f[0].width() * f[0].height();
    assert!(
        pano.width() * pano.height() > frame_area * 3 / 2,
        "panorama {}x{} barely larger than one frame",
        pano.width(),
        pano.height()
    );
}

#[test]
fn every_approximation_completes_on_both_inputs() {
    for input in InputId::BOTH {
        let f = frames(input, 10);
        for approx in Approximation::paper_variants() {
            let vs = VideoSummarizer::new(experiments::pipeline_config(Scale::Quick, approx));
            let s = vs
                .run(&f)
                .unwrap_or_else(|e| panic!("{input} {approx}: golden run failed: {e}"));
            assert!(
                !s.panoramas.is_empty(),
                "{input} {approx}: produced no output"
            );
        }
    }
}

#[test]
fn high_variation_input_produces_more_mini_panoramas() {
    let vs = VideoSummarizer::new(experiments::pipeline_config(
        Scale::Quick,
        Approximation::Baseline,
    ));
    let s1 = vs.run(&frames(InputId::Input1, 24)).unwrap();
    let s2 = vs.run(&frames(InputId::Input2, 24)).unwrap();
    assert!(
        s1.stats.segments > s2.stats.segments,
        "Input1 must fragment more: {} vs {} segments",
        s1.stats.segments,
        s2.stats.segments
    );
}

#[test]
fn rfd_reduces_modeled_work_most_on_input1() {
    // The Fig 5 headline: VS_RFD's relative modeled time on Input 1 is
    // well below its Input 2 ratio. Needs Paper scale — at 10 frames one
    // dropped frame is statistical noise.
    let model = MachineModel::default();
    let ratio = |input: InputId| {
        let base = experiments::vs_workload(input, Scale::Paper, Approximation::Baseline);
        let rfd = experiments::vs_workload(input, Scale::Paper, Approximation::rfd_default());
        let gb = campaign::profile_golden(&base).unwrap();
        let gr = campaign::profile_golden(&rfd).unwrap();
        model.evaluate(&gr.profile.instr).time_seconds
            / model.evaluate(&gb.profile.instr).time_seconds
    };
    let r1 = ratio(InputId::Input1);
    let r2 = ratio(InputId::Input2);
    assert!(r1 < 1.0, "RFD must speed up Input1 (got x{r1:.2})");
    assert!(
        r1 < r2 + 0.05,
        "RFD gains must be at least as large on Input1: x{r1:.2} vs x{r2:.2}"
    );
}

#[test]
fn output_quality_of_approximations_is_bounded() {
    // §IV-A: approximations keep acceptable output quality. At quick
    // scale the primary panorama of each variant must not be egregiously
    // far from the baseline on the smooth input.
    let f = frames(InputId::Input2, 10);
    let base = VideoSummarizer::new(experiments::pipeline_config(
        Scale::Quick,
        Approximation::Baseline,
    ))
    .run(&f)
    .unwrap();
    for approx in [
        Approximation::rfd_default(),
        Approximation::kds_default(),
        Approximation::sm_default(),
    ] {
        let s = VideoSummarizer::new(experiments::pipeline_config(Scale::Quick, approx))
            .run(&f)
            .unwrap();
        let q = quality::summary_quality(&base.panoramas, &s.panoramas);
        assert!(
            !q.is_egregious(),
            "{approx}: output egregiously far from baseline ({:.1}%)",
            q.relative_l2_norm
        );
    }
}

#[test]
fn summaries_shrink_data_volume() {
    // The motivating property: a summary is far smaller than the input.
    let f = frames(InputId::Input2, 16);
    let vs = VideoSummarizer::new(experiments::pipeline_config(
        Scale::Quick,
        Approximation::Baseline,
    ));
    let s = vs.run(&f).unwrap();
    let input_px: usize = f.iter().map(|x| x.width() * x.height()).sum();
    let output_px: usize = s.panoramas.iter().map(|p| p.width() * p.height()).sum();
    assert!(
        output_px * 2 < input_px,
        "no data reduction: {input_px} -> {output_px}"
    );
}
