//! Determinism guarantees spanning every crate: the foundation of the
//! Mask/SDC classification (byte-identical golden outputs) and of
//! reproducible campaigns.

use video_summarization::prelude::*;

#[test]
fn golden_runs_are_bit_identical() {
    let w = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
    let a = campaign::profile_golden(&w).unwrap();
    let b = campaign::profile_golden(&w).unwrap();
    assert_eq!(a.output, b.output, "golden outputs must be byte-identical");
    assert_eq!(a.profile.gpr_taps, b.profile.gpr_taps);
    assert_eq!(a.profile.fpr_taps, b.profile.fpr_taps);
    assert_eq!(a.profile.instr.total, b.profile.instr.total);
}

#[test]
fn golden_runs_are_identical_across_threads() {
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let main_golden = campaign::profile_golden(&w).unwrap();
    let handle = std::thread::spawn(move || {
        let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
        campaign::profile_golden(&w).unwrap().output
    });
    let other = handle.join().unwrap();
    assert_eq!(main_golden.output, other);
}

#[test]
fn campaigns_are_deterministic_and_thread_count_invariant() {
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden(&w).unwrap();
    let run = |threads: usize| {
        let cfg = CampaignConfig::new(RegClass::Gpr, 60)
            .seed(0xD)
            .threads(threads)
            .keep_sdc_outputs(false);
        campaign::run_campaign(&w, &g, &cfg)
            .iter()
            .map(|r| (r.spec, r.outcome))
            .collect::<Vec<_>>()
    };
    let a = run(1);
    let b = run(4);
    let c = run(4);
    assert_eq!(a, b, "thread count changed campaign results");
    assert_eq!(b, c, "repeat campaign differed");
}

#[test]
fn different_seeds_sample_different_fault_sites() {
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden(&w).unwrap();
    let sites = |seed: u64| {
        let cfg = CampaignConfig::new(RegClass::Gpr, 40)
            .seed(seed)
            .keep_sdc_outputs(false);
        campaign::run_campaign(&w, &g, &cfg)
            .iter()
            .map(|r| r.spec.tap_index)
            .collect::<Vec<_>>()
    };
    assert_ne!(sites(1), sites(2));
}

#[test]
fn rendered_inputs_are_stable_across_processes_by_construction() {
    // Spot-check a few pixel values against frozen constants: if the
    // terrain/camera/noise stack changes, golden outputs recorded in
    // EXPERIMENTS.md are invalidated and this test flags it.
    let spec = experiments::input_spec(InputId::Input1, Scale::Quick).with_frames(2);
    let frames = render_input(&spec);
    let f0 = &frames[0];
    let checksum: u64 = f0
        .as_bytes()
        .iter()
        .enumerate()
        .map(|(i, &b)| (i as u64).wrapping_mul(31).wrapping_add(b as u64))
        .fold(0u64, |a, v| a.wrapping_mul(1099511628211).wrapping_add(v));
    let again: u64 = render_input(&spec)[0]
        .as_bytes()
        .iter()
        .enumerate()
        .map(|(i, &b)| (i as u64).wrapping_mul(31).wrapping_add(b as u64))
        .fold(0u64, |a, v| a.wrapping_mul(1099511628211).wrapping_add(v));
    assert_eq!(checksum, again);
}

#[test]
fn approximation_runs_are_deterministic_too() {
    for approx in [
        Approximation::rfd_default(),
        Approximation::kds_default(),
        Approximation::sm_default(),
    ] {
        let w = experiments::vs_workload(InputId::Input1, Scale::Quick, approx);
        let a = campaign::profile_golden(&w).unwrap();
        let b = campaign::profile_golden(&w).unwrap();
        assert_eq!(a.output, b.output, "{approx}: non-deterministic golden");
    }
}
