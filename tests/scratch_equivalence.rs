//! Zero-allocation proof at the workload layer: reusable run workspaces
//! must never change what the fault simulator computes. Golden tap
//! profiles (total, eligible and per-function counts), fault draws,
//! outcome classifications and fired-fault records have to be
//! bit-for-bit identical between the fresh-allocation path
//! ([`Workload::run`] / `run_campaign`) and the workspace-reuse path
//! (`run_scratch` / `run_campaign_checkpointed`) — across repeated
//! reuse, thread counts and both checkpoint policies. The workspace is a
//! buffer recycler outside the simulated machine; any divergence here
//! means buffer reuse leaked into the tap stream or the output.

use video_summarization::prelude::*;
use vs_fault::campaign::{
    CheckpointPolicy, Checkpointed, Injection, ScratchCheckpointed, ScratchWorkload,
};
use vs_fault::session;

fn workload() -> VsWorkload {
    experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline)
}

/// (spec, outcome, fired) fingerprint of a campaign — everything the
/// resiliency statistics are built from.
fn fingerprint(recs: &[Injection<Vec<RgbImage>>]) -> Vec<String> {
    recs.iter()
        .map(|r| format!("{} {:?} {:?}", r.spec, r.outcome, r.fired))
        .collect()
}

#[test]
fn workspace_runs_match_allocating_runs_tap_for_tap() {
    let w = workload();
    let (fresh, fresh_taps) = {
        let _g = session::begin_profile();
        (Workload::run(&w).unwrap(), session::report())
    };
    // The same workspace, reused run after run: the tap report (which
    // carries per-function and per-class instruction counts) and the
    // output must never drift from the allocating run's.
    let mut scratch = w.make_scratch();
    for round in 0..3 {
        let _g = session::begin_profile();
        w.run_scratch(&mut scratch).unwrap();
        assert_eq!(
            session::report(),
            fresh_taps,
            "tap profile diverged on reuse round {round}"
        );
        assert_eq!(
            *w.scratch_output(&scratch),
            fresh,
            "output diverged on reuse round {round}"
        );
    }
}

#[test]
fn workspace_resume_matches_allocating_resume_at_every_checkpoint() {
    let w = workload();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    assert!(!ck.checkpoints.is_empty());
    let mut scratch = w.make_scratch();
    // Dirty the workspace with a full run first: a restore must fully
    // reset every buffer it touches.
    w.run_scratch(&mut scratch).unwrap();
    for (i, c) in ck.checkpoints.iter().enumerate() {
        let (fresh, fresh_taps) = {
            let _g = session::begin_profile_at(c.tap_snapshot());
            (Checkpointed::resume(&w, c).unwrap(), session::report())
        };
        let _g = session::begin_profile_at(c.tap_snapshot());
        w.resume_scratch(c, &mut scratch).unwrap();
        assert_eq!(
            session::report(),
            fresh_taps,
            "tap counters diverged resuming checkpoint {i}"
        );
        assert_eq!(
            *w.scratch_output(&scratch),
            fresh,
            "output diverged resuming checkpoint {i}"
        );
        assert_eq!(fresh, ck.golden.output, "checkpoint {i} resume vs golden");
    }
}

#[test]
fn campaigns_match_across_policies_and_threads() {
    let w = workload();
    let golden = campaign::profile_golden(&w).unwrap();
    let ck_off = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::Off).unwrap();
    let ck2 = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    assert_eq!(
        golden.profile, ck2.golden.profile,
        "checkpoint capture perturbed the golden profile"
    );
    assert!(ck_off.checkpoints.is_empty(), "Off must capture nothing");
    assert!(
        ck2.checkpoints.iter().any(|c| c.is_render()),
        "render-phase checkpoints expected at EveryKFrames(2)"
    );
    const N: usize = 16;
    for class in [RegClass::Gpr, RegClass::Fpr] {
        for threads in [1usize, 4] {
            let alloc = campaign::run_campaign(
                &w,
                &golden,
                &CampaignConfig::new(class, N).seed(0x7E1E).threads(threads),
            );
            for (policy, g) in [
                (CheckpointPolicy::Off, &ck_off),
                (CheckpointPolicy::EveryKFrames(2), &ck2),
            ] {
                let cfg = CampaignConfig::new(class, N)
                    .seed(0x7E1E)
                    .threads(threads)
                    .checkpoint_policy(policy);
                let reused = campaign::run_campaign_checkpointed(&w, g, &cfg);
                assert_eq!(
                    fingerprint(&alloc),
                    fingerprint(&reused),
                    "campaign diverged: {class} threads({threads}) {policy:?}"
                );
            }
        }
    }
}
