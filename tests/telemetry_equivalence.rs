//! Zero-perturbation proof at the workload layer: telemetry sinks must
//! never change what the fault simulator computes. Golden tap profiles,
//! fault draws, outcome classifications and fired-fault records have to
//! be bit-for-bit identical with telemetry off and with a JSONL sink
//! streaming every event — across thread counts and both checkpoint
//! policies. Telemetry lives outside the simulated machine; any
//! divergence here means an event emission leaked into the tap stream.

use std::sync::{Arc, Mutex};
use video_summarization::prelude::*;
use vs_core::workloads::VsWorkload;
use vs_fault::campaign::{CheckpointPolicy, Injection};
use vs_telemetry::ledger::Ledger;
use vs_telemetry::{JsonlSink, OwnedValue, Sink};

fn workload() -> VsWorkload {
    experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline)
}

/// (spec, outcome, fired) fingerprint of a campaign — everything the
/// resiliency statistics are built from.
fn fingerprint(recs: &[Injection<Vec<RgbImage>>]) -> Vec<String> {
    recs.iter()
        .map(|r| format!("{} {:?} {:?}", r.spec, r.outcome, r.fired))
        .collect()
}

/// A JSONL sink whose bytes stay reachable after the install guard
/// drops, so the test can parse what was streamed.
fn shared_jsonl_sink() -> (Arc<dyn Sink>, Arc<Mutex<Vec<u8>>>) {
    struct SharedWriter(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let bytes = Arc::new(Mutex::new(Vec::new()));
    let sink = JsonlSink::new(SharedWriter(Arc::clone(&bytes)));
    (Arc::new(sink), bytes)
}

#[test]
fn golden_profile_is_identical_with_jsonl_sink_installed() {
    let w = workload();
    let quiet = campaign::profile_golden(&w).unwrap();

    let (sink, bytes) = shared_jsonl_sink();
    let traced = {
        let _g = vs_telemetry::install(sink);
        campaign::profile_golden(&w).unwrap()
    };

    assert_eq!(quiet.profile, traced.profile, "tap profile perturbed");
    assert_eq!(quiet.output, traced.output, "golden output perturbed");

    let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
    let events = vs_telemetry::jsonl::parse_trace(&text).expect("trace must parse");
    assert!(
        events.iter().any(|e| e.name == "golden_profile"),
        "golden run emitted no profile event"
    );
    assert!(events.iter().any(|e| e.name == "frame"));
}

#[test]
fn campaigns_are_identical_across_threads_with_jsonl_sink() {
    let w = workload();
    let golden = campaign::profile_golden(&w).unwrap();
    const N: usize = 16;

    for threads in [1usize, 4] {
        let cfg = CampaignConfig::new(RegClass::Gpr, N)
            .seed(0x7E1E)
            .threads(threads);
        let quiet = campaign::run_campaign(&w, &golden, &cfg);

        let (sink, bytes) = shared_jsonl_sink();
        let traced = {
            let _g = vs_telemetry::install(sink);
            campaign::run_campaign(&w, &golden, &cfg)
        };
        assert_eq!(
            fingerprint(&quiet),
            fingerprint(&traced),
            "campaign perturbed at threads({threads})"
        );

        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let events = vs_telemetry::jsonl::parse_trace(&text).expect("trace must parse");
        let injections = events.iter().filter(|e| e.name == "injection").count();
        assert_eq!(injections, N, "one injection event per run");
        assert_eq!(
            events.iter().filter(|e| e.name == "campaign_start").count(),
            1
        );
        assert_eq!(
            events.iter().filter(|e| e.name == "campaign_done").count(),
            1
        );
    }
}

#[test]
fn spans_and_ledger_do_not_perturb_campaigns() {
    let w = workload();
    let golden = campaign::profile_golden(&w).unwrap();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    const N: usize = 12;

    let dir = std::env::temp_dir().join(format!("vs_equiv_ledger_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ledger = Ledger::in_dir(&dir);
    vs_telemetry::set_trace_seed(0x0B5E);
    let mut appended = 0usize;

    for threads in [1usize, 4] {
        for checkpointed in [false, true] {
            let mut cfg = CampaignConfig::new(RegClass::Gpr, N)
                .seed(0x0B5E)
                .threads(threads);
            if checkpointed {
                cfg = cfg.checkpoint_policy(CheckpointPolicy::EveryKFrames(2));
            }
            let quiet = if checkpointed {
                campaign::run_campaign_checkpointed(&w, &ck, &cfg)
            } else {
                campaign::run_campaign(&w, &golden, &cfg)
            };

            let (sink, bytes) = shared_jsonl_sink();
            let traced = {
                let _g = vs_telemetry::install(sink);
                let _case = vs_telemetry::span("equivalence_case");
                let recs = if checkpointed {
                    campaign::run_campaign_checkpointed(&w, &ck, &cfg)
                } else {
                    campaign::run_campaign(&w, &golden, &cfg)
                };
                // Persist a manifest while the trace is live: ledger
                // writes must be as invisible to the campaign as the
                // sink itself.
                ledger
                    .append(&vs_telemetry::ledger::manifest(vec![
                        ("tool".into(), OwnedValue::Str("equivalence".into())),
                        ("threads".into(), OwnedValue::U64(threads as u64)),
                        ("checkpointed".into(), OwnedValue::Bool(checkpointed)),
                    ]))
                    .expect("ledger append");
                appended += 1;
                recs
            };
            assert_eq!(
                fingerprint(&quiet),
                fingerprint(&traced),
                "spans+ledger perturbed campaign (threads {threads}, checkpointed {checkpointed})"
            );

            let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
            let events = vs_telemetry::jsonl::parse_trace(&text).expect("trace must parse");
            assert!(events.iter().any(|e| e.name == "span_enter"));
            assert!(events.iter().any(|e| e.name == "span_exit"));
            let stats =
                vs_telemetry::export::validate_spans(&events).expect("span tree well-formed");
            assert!(
                stats.spans >= 2,
                "test span plus driver campaign span, got {}",
                stats.spans
            );
            assert!(
                stats.max_depth >= 2,
                "campaign span must nest inside the test span"
            );
            assert_eq!(events.iter().filter(|e| e.name == "injection").count(), N);
        }
    }

    let back = ledger.read().expect("ledger reads back");
    assert_eq!(back.len(), appended);
    assert!(back.iter().all(|e| e.str("tool") == Some("equivalence")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_campaigns_are_identical_with_jsonl_sink() {
    let w = workload();
    let golden = campaign::profile_golden(&w).unwrap();
    let ck = campaign::profile_golden_checkpointed(&w, CheckpointPolicy::EveryKFrames(2)).unwrap();
    assert_eq!(golden.profile, ck.golden.profile);
    const N: usize = 16;

    for threads in [1usize, 4] {
        let cfg = CampaignConfig::new(RegClass::Gpr, N)
            .seed(0x7E1E)
            .threads(threads)
            .checkpoint_policy(CheckpointPolicy::EveryKFrames(2));
        let quiet = campaign::run_campaign_checkpointed(&w, &ck, &cfg);

        let (sink, bytes) = shared_jsonl_sink();
        let traced = {
            let _g = vs_telemetry::install(sink);
            campaign::run_campaign_checkpointed(&w, &ck, &cfg)
        };
        assert_eq!(
            fingerprint(&quiet),
            fingerprint(&traced),
            "checkpointed campaign perturbed at threads({threads})"
        );

        // Fast-forwarded campaigns must also match the scratch campaign
        // (fingerprints carry over from the run_campaign test seed).
        let scratch = campaign::run_campaign(
            &w,
            &golden,
            &CampaignConfig::new(RegClass::Gpr, N)
                .seed(0x7E1E)
                .threads(threads),
        );
        assert_eq!(fingerprint(&scratch), fingerprint(&traced));

        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let events = vs_telemetry::jsonl::parse_trace(&text).expect("trace must parse");
        assert_eq!(events.iter().filter(|e| e.name == "injection").count(), N);
        let done = events
            .iter()
            .find(|e| e.name == "campaign_done")
            .expect("campaign_done present");
        assert_eq!(done.u64("done"), Some(N as u64));
    }
}
