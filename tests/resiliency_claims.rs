//! Integration tests asserting the paper's core resiliency claims at
//! test scale. These are the claims of §VI, checked end to end through
//! the real pipeline and the real fault-injection framework.

use video_summarization::fault::campaign::profile_golden_masked;
use video_summarization::prelude::*;

const INJECTIONS: usize = 160;

fn campaign_rates(
    input: InputId,
    approx: Approximation,
    class: RegClass,
) -> video_summarization::fault::stats::OutcomeRates {
    let w = experiments::vs_workload(input, Scale::Quick, approx);
    let g = campaign::profile_golden(&w).expect("golden run");
    let cfg = CampaignConfig::new(class, INJECTIONS)
        .seed(0xC1A1)
        .keep_sdc_outputs(false);
    outcome_rates(&campaign::run_campaign(&w, &g, &cfg))
}

#[test]
fn gpr_faults_crash_heavily_fpr_faults_mask() {
    // §VI-A: GPR crash rate ~40% (segfaults dominating), FPR masking
    // ≥99.5%.
    let gpr = {
        let w = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
        let g = campaign::profile_golden(&w).unwrap();
        let cfg = CampaignConfig::new(RegClass::Gpr, INJECTIONS).seed(0xC1A1);
        outcome_rates(&campaign::run_campaign(&w, &g, &cfg))
    };
    assert!(
        (20.0..70.0).contains(&gpr.crash),
        "GPR crash rate {:.1}% outside the paper's ballpark",
        gpr.crash
    );
    assert!(
        gpr.crash_segfault_share > 60.0,
        "segfaults must dominate crashes ({:.1}%)",
        gpr.crash_segfault_share
    );
    assert!(
        gpr.masked > 30.0,
        "GPR masking collapsed: {:.1}%",
        gpr.masked
    );

    let fpr = {
        let w = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
        let g = campaign::profile_golden(&w).unwrap();
        let cfg = CampaignConfig::new(RegClass::Fpr, INJECTIONS).seed(0xC1A1);
        outcome_rates(&campaign::run_campaign(&w, &g, &cfg))
    };
    assert!(
        fpr.masked > 95.0,
        "FPR masking {:.1}% below the paper's ≥99.5% claim band",
        fpr.masked
    );
    assert_eq!(fpr.crash, 0.0, "FPR faults must never crash");
}

#[test]
fn approximations_do_not_degrade_crash_or_hang_profile() {
    // §VI-B: Crash/Mask/Hang of the approximate algorithms stay close to
    // the baseline; only SDC may move by a few points.
    let base = campaign_rates(InputId::Input2, Approximation::Baseline, RegClass::Gpr);
    for approx in [
        Approximation::rfd_default(),
        Approximation::kds_default(),
        Approximation::sm_default(),
    ] {
        let r = campaign_rates(InputId::Input2, approx, RegClass::Gpr);
        assert!(
            (r.crash - base.crash).abs() < 20.0,
            "{approx}: crash {:.1}% vs baseline {:.1}%",
            r.crash,
            base.crash
        );
        assert!(r.hang < 6.0, "{approx}: hang rate {:.1}% exploded", r.hang);
        assert!(
            r.sdc < base.sdc + 12.0,
            "{approx}: SDC {:.1}% more than slightly above baseline {:.1}%",
            r.sdc,
            base.sdc
        );
    }
}

#[test]
fn fpr_masking_holds_for_all_approximations() {
    // §VI-B: "FPR error injections in the approximate algorithms are
    // masked > 99.5% of the time".
    for approx in Approximation::paper_variants() {
        let r = campaign_rates(InputId::Input2, approx, RegClass::Fpr);
        assert!(
            r.masked > 95.0,
            "{approx}: FPR masked only {:.1}%",
            r.masked
        );
    }
}

#[test]
fn end_to_end_masks_warp_faults_better_than_standalone_wp() {
    // §VI-C: the compositional effect. Injections confined to the warp
    // functions mask more often in the full application than in the
    // standalone WP kernel.
    let mask = FuncMask::only(&[FuncId::WarpPerspective, FuncId::RemapBilinear]);
    let vs = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
    let vs_g = profile_golden_masked(&vs, mask).unwrap();
    let cfg = CampaignConfig::new(RegClass::Gpr, INJECTIONS * 2)
        .seed(3)
        .keep_sdc_outputs(false);
    let vs_r = outcome_rates(&campaign::run_campaign(&vs, &vs_g, &cfg));

    let wp = WpWorkload::representative(vs.frames());
    let wp_g = profile_golden_masked(&wp, mask).unwrap();
    let wp_r = outcome_rates(&campaign::run_campaign(&wp, &wp_g, &cfg));

    assert!(
        vs_r.masked > wp_r.masked + 2.0,
        "no compositional masking: VS {:.1}% vs WP {:.1}%",
        vs_r.masked,
        wp_r.masked
    );
    assert!(
        wp_r.sdc > vs_r.sdc,
        "WP must expose more SDCs: {:.1}% vs {:.1}%",
        wp_r.sdc,
        vs_r.sdc
    );
}

#[test]
fn most_sdcs_are_benign_by_the_ed_metric() {
    // §VI-D: a large majority of SDCs carry a small Egregiousness
    // Degree.
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden(&w).unwrap();
    let cfg = CampaignConfig::new(RegClass::Gpr, INJECTIONS * 3)
        .seed(0xED)
        .keep_sdc_outputs(true);
    let recs = campaign::run_campaign(&w, &g, &cfg);
    let qualities: Vec<_> = recs
        .iter()
        .filter(|r| r.outcome == Outcome::Sdc)
        .filter_map(|r| r.sdc_output.as_ref())
        .map(|o| quality::summary_quality(&g.output, o))
        .collect();
    assert!(
        qualities.len() >= 3,
        "too few SDCs ({}) to assess quality",
        qualities.len()
    );
    let benign = qualities
        .iter()
        .filter(|q| q.ed.is_some_and(|e| e <= 10))
        .count();
    assert!(
        benign * 2 >= qualities.len(),
        "only {benign}/{} SDCs below ED 10",
        qualities.len()
    );
}
