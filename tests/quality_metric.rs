//! Integration tests of the SDC-quality metric against real pipeline
//! outputs (not synthetic toy images).

use video_summarization::prelude::*;

fn baseline_pano() -> RgbImage {
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let s = w.summarize().unwrap();
    quality::primary_panorama(&s.panoramas).unwrap().clone()
}

/// Corrupt a rectangular region hard: slam each channel to the opposite
/// rail, so every corrupted pixel clears the metric's >128 threshold
/// (plain inversion of midtone terrain would stay under it).
fn corrupt_rect(img: &RgbImage, x0: usize, y0: usize, w: usize, h: usize) -> RgbImage {
    let mut out = img.clone();
    let rail = |v: u8| if v < 128 { 255 } else { 0 };
    for y in y0..(y0 + h).min(img.height()) {
        for x in x0..(x0 + w).min(img.width()) {
            let p = img.get(x, y).unwrap();
            out.set(x, y, [rail(p[0]), rail(p[1]), rail(p[2])]);
        }
    }
    out
}

#[test]
fn ed_grows_with_corruption_extent() {
    let pano = baseline_pano();
    let small = corrupt_rect(&pano, 10, 10, 12, 12);
    let large = corrupt_rect(&pano, 10, 10, 60, 40);
    let q_small = quality::sdc_quality(&pano, &small);
    let q_large = quality::sdc_quality(&pano, &large);
    assert!(
        q_small.relative_l2_norm < q_large.relative_l2_norm,
        "metric not monotone in corruption extent: {:.2} vs {:.2}",
        q_small.relative_l2_norm,
        q_large.relative_l2_norm
    );
}

#[test]
fn identical_panoramas_have_ed_zero() {
    let pano = baseline_pano();
    let q = quality::sdc_quality(&pano, &pano);
    assert_eq!(q.ed, Some(0));
    assert_eq!(q.relative_l2_norm, 0.0);
}

#[test]
fn metric_is_translation_tolerant_on_real_panoramas() {
    // §V-D: "differences due to perspective ... are removed" before
    // scoring. A shifted copy of the same panorama is a cosmetic, not a
    // content, difference.
    let pano = baseline_pano();
    let shifted = RgbImage::from_fn(pano.width(), pano.height(), |x, y| {
        pano.get_clamped(x as isize - 3, y as isize - 3)
    });
    let unregistered_differs = pano != shifted;
    assert!(unregistered_differs);
    let q = quality::sdc_quality(&pano, &shifted);
    assert!(
        q.relative_l2_norm < 25.0,
        "translation should be mostly corrected: {:.2}%",
        q.relative_l2_norm
    );
}

#[test]
fn approximate_golden_deviation_is_larger_on_input1() {
    // §VI-D / Fig 12: the deviation between Approx_golden and VS_golden
    // is what shifts the vs-VS_golden curves, and it is much larger for
    // Input 1 (the paper quotes VS_SM at ~37% vs ~8%).
    let dev = |input: InputId| {
        let base = experiments::vs_workload(input, Scale::Quick, Approximation::Baseline)
            .summarize()
            .unwrap();
        let sm = experiments::vs_workload(input, Scale::Quick, Approximation::sm_default())
            .summarize()
            .unwrap();
        quality::summary_quality(&base.panoramas, &sm.panoramas).relative_l2_norm
    };
    let d1 = dev(InputId::Input1);
    let d2 = dev(InputId::Input2);
    assert!(
        d1 > d2,
        "Input1 deviation {:.2}% must exceed Input2's {:.2}%",
        d1,
        d2
    );
}

#[test]
fn missing_output_is_egregious() {
    let pano = baseline_pano();
    let q = quality::summary_quality(std::slice::from_ref(&pano), &[]);
    assert!(q.is_egregious());
}

#[test]
fn fully_black_output_is_heavily_penalized() {
    let pano = baseline_pano();
    let black = RgbImage::new(pano.width(), pano.height());
    let q = quality::sdc_quality(&pano, &black);
    assert!(
        q.relative_l2_norm > 30.0,
        "blank output scored too mildly: {:.2}%",
        q.relative_l2_norm
    );
}
