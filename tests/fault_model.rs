//! Integration tests of the fault model against the full pipeline:
//! coverage, function masking and the structure of fired faults.

use video_summarization::fault::stats::{
    bit_histogram, coefficient_of_variation, func_histogram, register_histogram,
};
use video_summarization::prelude::*;

fn full_campaign(class: RegClass, n: usize) -> Vec<campaign::Injection<Vec<RgbImage>>> {
    let w = experiments::vs_workload(InputId::Input1, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden(&w).unwrap();
    let cfg = CampaignConfig::new(class, n)
        .seed(0xFA)
        .keep_sdc_outputs(false);
    campaign::run_campaign(&w, &g, &cfg)
}

#[test]
fn every_fault_fires_in_a_full_campaign() {
    // The fault site is drawn from the profiled tap population, so every
    // armed fault must actually fire during its run (the golden and
    // injected executions visit the same taps up to the injection point).
    let recs = full_campaign(RegClass::Gpr, 120);
    for r in &recs {
        assert!(
            r.fired.is_some(),
            "injection {} ({}) never fired",
            r.index,
            r.spec
        );
    }
}

#[test]
fn register_and_bit_coverage_are_uniform() {
    // Fig 9b: uniform over 32 registers and 64 bit positions.
    let recs = full_campaign(RegClass::Gpr, 640);
    let regs = register_histogram(&recs);
    let bits = bit_histogram(&recs);
    assert!(regs.iter().all(|&c| c > 0), "register uncovered: {regs:?}");
    assert!(
        coefficient_of_variation(&regs) < 0.4,
        "register coverage skewed: CV {:.2}",
        coefficient_of_variation(&regs)
    );
    assert!(
        coefficient_of_variation(&bits) < 0.6,
        "bit coverage skewed: CV {:.2}",
        coefficient_of_variation(&bits)
    );
}

#[test]
fn faults_land_across_many_pipeline_functions() {
    let recs = full_campaign(RegClass::Gpr, 300);
    let hist = func_histogram(&recs);
    let hit_functions = hist.iter().filter(|&&c| c > 0).count();
    assert!(
        hit_functions >= 4,
        "faults concentrated in too few functions: {hist:?}"
    );
    // The hot function must absorb the plurality of faults (it owns the
    // plurality of dynamic taps — Fig 8's 54% warp share).
    let remap = hist[FuncId::RemapBilinear.index()];
    assert!(
        hist.iter().all(|&c| c <= remap),
        "remap_bilinear is not the most-hit function: {hist:?}"
    );
}

#[test]
fn masked_runs_produce_identical_outputs_by_construction() {
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden(&w).unwrap();
    let cfg = CampaignConfig::new(RegClass::Fpr, 40)
        .seed(5)
        .keep_sdc_outputs(true);
    let recs = campaign::run_campaign(&w, &g, &cfg);
    // FPR faults mask overwhelmingly; each masked record must carry no
    // output (it equalled golden) and each SDC record must carry one.
    for r in &recs {
        match r.outcome {
            Outcome::Masked => assert!(r.sdc_output.is_none()),
            Outcome::Sdc => assert!(r.sdc_output.is_some()),
            other => panic!("unexpected FPR outcome {other}"),
        }
    }
}

#[test]
fn hang_budget_bounds_every_run() {
    // Even with hostile control-value corruption, no run may exceed the
    // configured budget by more than one work batch; the campaign
    // returning at all (with Hang outcomes possible) is the guarantee.
    let recs = full_campaign(RegClass::Gpr, 200);
    let hangs = recs.iter().filter(|r| r.outcome == Outcome::Hang).count();
    // Hangs are rare but the monitor must classify them as such rather
    // than letting the campaign wedge (reaching this line proves it).
    assert!(hangs <= recs.len());
}

#[test]
fn function_mask_confines_fired_faults() {
    let mask = FuncMask::only(&[FuncId::MatchKeypoints]);
    let w = experiments::vs_workload(InputId::Input2, Scale::Quick, Approximation::Baseline);
    let g = campaign::profile_golden_masked(&w, mask).unwrap();
    let cfg = CampaignConfig::new(RegClass::Gpr, 60)
        .seed(9)
        .keep_sdc_outputs(false);
    let recs = campaign::run_campaign(&w, &g, &cfg);
    for r in &recs {
        let fired = r.fired.expect("fault must fire");
        assert_eq!(
            fired.func,
            FuncId::MatchKeypoints,
            "fault escaped the function mask: {fired}"
        );
    }
}
