//! Equivalence proofs for the adaptive/compositional campaign engine.
//!
//! 1. Wilson-gated early stopping must be a pure *truncation*: the
//!    records an adaptive campaign executes are bit-identical to a
//!    prefix of the fixed-budget campaign at the same seed.
//! 2. A warm compositional cache on an unchanged pipeline must re-inject
//!    nothing and reproduce the cold run's estimate exactly.
//! 3. An approximation change must invalidate exactly the groups whose
//!    upstream stage digests diverged — reuse follows the diff.

use video_summarization::prelude::*;
use vs_core::workloads::VsWorkload;
use vs_fault::adaptive::{self, AdaptiveConfig};
use vs_fault::campaign::{CheckpointPolicy, Injection};
use vs_fault::compose::{self, CampaignCache, ComposeConfig};
use vs_fault::forensics::Stage;
use vs_fault::pruning;

fn workload(approx: Approximation) -> VsWorkload {
    experiments::vs_workload(InputId::Input2, Scale::Quick, approx)
}

/// (spec, outcome, fired) fingerprint of a campaign — everything the
/// resiliency statistics are built from.
fn fingerprint(recs: &[Injection<Vec<RgbImage>>]) -> Vec<String> {
    recs.iter()
        .map(|r| format!("{} {:?} {:?}", r.spec, r.outcome, r.fired))
        .collect()
}

fn compose_cfg() -> ComposeConfig {
    ComposeConfig {
        seed: 0xADAF,
        // Generous epsilon: unit-scale pilot counts keep the test fast;
        // the statistical behaviour is covered by vs-fault's own tests.
        epsilon_pp: 100.0,
        batch: 4,
        min_pilots: 3,
        max_pilots: 4,
        hang_factor: 16,
        threads: 4,
    }
}

#[test]
fn adaptive_records_are_a_prefix_of_the_fixed_campaign() {
    let w = workload(Approximation::Baseline);
    let golden =
        campaign::profile_golden_checkpointed_forensic(&w, CheckpointPolicy::EveryKFrames(2))
            .unwrap();
    let cfg = CampaignConfig::new(RegClass::Gpr, 96)
        .seed(0xF0E2)
        .threads(4)
        .checkpoint_policy(CheckpointPolicy::EveryKFrames(2));
    let fixed = campaign::run_campaign_checkpointed(&w, &golden, &cfg);

    let acfg = AdaptiveConfig {
        epsilon_pp: 20.0,
        batch: 12,
        min_injections: 24,
        knee_tol_pp: 10.0,
    };
    let adaptive = adaptive::run_adaptive_checkpointed(&w, &golden, &cfg, &acfg);

    assert!(
        adaptive.converged,
        "adaptive campaign must stop early at a 20pp epsilon (executed {}/{})",
        adaptive.records.len(),
        adaptive.budget
    );
    assert!(adaptive.records.len() < fixed.len());
    assert_eq!(
        fingerprint(&adaptive.records),
        fingerprint(&fixed[..adaptive.records.len()]),
        "early stopping must truncate, never perturb"
    );
    // The adaptive estimate is the running rate at the stopping point.
    let prefix_rates = outcome_rates(&fixed[..adaptive.records.len()]);
    assert_eq!(adaptive.rates, prefix_rates);
    assert!(adaptive::max_half_width(&adaptive.rates) <= acfg.epsilon_pp);
}

#[test]
fn warm_compositional_cache_reinjects_zero_groups() {
    let w = workload(Approximation::Baseline);
    let golden = campaign::profile_golden_forensic(&w).unwrap();
    let cfg = compose_cfg();
    let mut cache = CampaignCache::new();

    let cold = compose::run_composed_campaign(&w, &golden, &cfg, &mut cache);
    assert!(cold.injections_executed > 0);
    assert_eq!(cold.reused_groups, 0);

    let warm = compose::run_composed_campaign(&w, &golden, &cfg, &mut cache);
    assert_eq!(
        warm.injections_executed, 0,
        "warm cache must skip every group"
    );
    assert_eq!(warm.reused_groups, warm.groups.len());
    assert_eq!(
        warm.estimate, cold.estimate,
        "inherited counts must be exact"
    );
    for (c, h) in cold.groups.iter().zip(&warm.groups) {
        assert_eq!(c.key, h.key);
        assert_eq!(c.counts, h.counts);
    }

    // And a cache reloaded from its JSONL serialization is just as warm.
    let mut reloaded = CampaignCache::from_jsonl(&cache.to_jsonl()).unwrap();
    let rewarm = compose::run_composed_campaign(&w, &golden, &cfg, &mut reloaded);
    assert_eq!(rewarm.injections_executed, 0);
    assert_eq!(rewarm.estimate, cold.estimate);
}

#[test]
fn approximation_change_invalidates_exactly_diverged_stage_groups() {
    let base = workload(Approximation::Baseline);
    let golden_base = campaign::profile_golden_forensic(&base).unwrap();
    let cfg = compose_cfg();
    let mut cache = CampaignCache::new();
    compose::run_composed_campaign(&base, &golden_base, &cfg, &mut cache);

    // VS_KDS subsets the key points at the matching stage: stages up to
    // ORB are bit-identical, matching and everything downstream diverge.
    let kds = workload(Approximation::kds_default());
    let golden_kds = campaign::profile_golden_forensic(&kds).unwrap();
    let d_base = golden_base.digests.as_ref().unwrap();
    let d_kds = golden_kds.digests.as_ref().unwrap();

    let upstream_identical = |stage: Stage| {
        Stage::ALL[..=stage.index()]
            .iter()
            .all(|&s| d_base.digest(s) == d_kds.digest(s) && d_base.count(s) == d_kds.count(s))
    };
    // The change must be visible in the golden digests at all, and not
    // from the first stage (the input frames are untouched).
    assert!(!upstream_identical(Stage::Summary), "KDS must move digests");
    assert!(
        upstream_identical(Stage::Decode),
        "KDS must not touch decode"
    );

    let base_groups = pruning::site_groups(&golden_base);
    let res = compose::run_composed_campaign(&kds, &golden_kds, &cfg, &mut cache);
    let mut reused = 0usize;
    for g in &res.groups {
        let stage = Stage::of_func(g.group.func);
        let same_group_upstream = upstream_identical(stage) && base_groups.contains(&g.group);
        assert_eq!(
            g.reused, same_group_upstream,
            "group {:?}/{:?} at stage {:?}: reuse must track upstream digest equality",
            g.group.func, g.group.op, stage
        );
        reused += usize::from(g.reused);
    }
    assert!(reused > 0, "pre-divergence groups must be inherited");
    assert!(
        reused < res.groups.len(),
        "post-divergence groups must re-inject"
    );
}
